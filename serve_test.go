package minato

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// serveDataset is a fat-sample dataset for service tests: 1 MiB samples
// make network transfer time visible against the virtual clock.
type serveDataset struct {
	space string
	n     int
}

func (d serveDataset) Name() string { return d.space }
func (d serveDataset) Len() int     { return d.n }
func (d serveDataset) Sample(epoch, i int) *Sample {
	return &Sample{
		Index: i, Epoch: epoch,
		Key:      Key{Space: d.space, Index: int64(i)},
		RawBytes: 1 << 20, Bytes: 1 << 20,
	}
}

// serveCluster builds a one-GPU cluster on the fabric's runtime — the
// standard backing for a preprocessing server in these tests.
func serveCluster(t *testing.T, sn *ServiceNet, opts ...ClusterOption) *Cluster {
	t.Helper()
	opts = append([]ClusterOption{
		WithRuntime(sn.Runtime()).(ClusterOption),
		WithEnv(EnvConfig{Cores: 8, GPUs: 1}).(ClusterOption),
	}, opts...)
	cl, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func drainRemote(t *testing.T, rs *RemoteSession) int {
	t.Helper()
	n := 0
	var last *Batch
	for b, err := range rs.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		last = b
	}
	// The final batch is consumer-owned (never auto-recycled); release it
	// so pool-balance assertions see every sample returned.
	if last != nil {
		last.Release()
	}
	return n
}

func TestServeDialBasic(t *testing.T) {
	sn := NewServiceNet(nil, ServiceNetConfig{})
	cl := serveCluster(t, sn)
	defer cl.Close()
	addr, err := Serve(cl,
		WithServiceNet(sn),
		Publish("train", namedDataset{space: "serve-basic", n: 256}, flatPipeline(time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer addr.Close()

	rs, err := Dial(addr, WithBatchSize(8), WithIterations(12))
	if err != nil {
		t.Fatal(err)
	}
	if n := drainRemote(t, rs); n != 12 {
		t.Fatalf("delivered %d batches, want 12", n)
	}
	rep, err := rs.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 12 || rep.Samples != 96 || rep.Loader != "remote" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.TrainTime <= 0 || rep.StepP99 <= 0 {
		t.Fatalf("no virtual time elapsed: train=%v p99=%v", rep.TrainTime, rep.StepP99)
	}
	st := addr.Stats()
	if st.BatchesSent != 12 || st.StreamsTotal != 1 || st.StreamsActive != 0 {
		t.Fatalf("server stats = %+v", st)
	}
	if ns := sn.Stats(); ns.BytesMoved == 0 || ns.FlowsCompleted == 0 {
		t.Fatalf("no fabric traffic recorded: %+v", ns)
	}
	if err := addr.Close(); err != nil {
		t.Fatal(err)
	}
	if ps := cl.pool.Stats(); ps.Gets != ps.Puts {
		t.Fatalf("pool leak: %+v", ps)
	}
}

// TestServeTypedRejections exercises the typed error taxonomy end to end:
// auth, per-token quota, unknown stream, and server-wide capacity.
func TestServeTypedRejections(t *testing.T) {
	sn := NewServiceNet(nil, ServiceNetConfig{})
	cl := serveCluster(t, sn)
	defer cl.Close()
	addr, err := Serve(cl,
		WithServiceNet(sn),
		WithToken("alice", TokenQuota{MaxStreams: 1}),
		WithToken("bob", TokenQuota{}),
		WithServerMaxStreams(2),
		Publish("train", namedDataset{space: "serve-rej", n: 256}, flatPipeline(time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer addr.Close()

	if _, err := Dial(addr, WithAuthToken("mallory")); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("bad token: got %v, want ErrUnauthorized", err)
	}
	var ce *ConfigError
	if _, err := Dial(addr, WithAuthToken("alice"), WithStream("nope")); !errors.As(err, &ce) || ce.Option != "WithStream" {
		t.Fatalf("unknown stream: got %v, want *ConfigError{WithStream}", err)
	}
	a1, err := Dial(addr, WithAuthToken("alice"), WithIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, WithAuthToken("alice")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota: got %v, want ErrQuotaExceeded", err)
	}
	b1, err := Dial(addr, WithAuthToken("bob"), WithIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, WithAuthToken("bob")); !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("capacity: got %v, want ErrServerOverloaded", err)
	}
	drainRemote(t, a1)
	drainRemote(t, b1)
	if _, err := a1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	st := addr.Stats()
	if st.RejectedUnauthorized != 1 || st.RejectedQuota != 1 || st.RejectedOverloaded != 1 {
		t.Fatalf("rejection counters = %+v", st)
	}
}

func TestDialRetryBackoff(t *testing.T) {
	sn := NewServiceNet(nil, ServiceNetConfig{})
	cl := serveCluster(t, sn)
	defer cl.Close()
	addr, err := Serve(cl,
		WithServiceNet(sn),
		WithServerMaxStreams(1),
		Publish("train", namedDataset{space: "serve-retry", n: 256}, flatPipeline(time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer addr.Close()

	holder, err := Dial(addr, WithIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	before := sn.Runtime().Now()
	if _, err := Dial(addr); !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("fail-fast dial: got %v", err)
	}
	fast := sn.Runtime().Now() - before

	before = sn.Runtime().Now()
	if _, err := Dial(addr, WithDialRetry(2, 10*time.Millisecond)); !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("retried dial: got %v", err)
	}
	// Two retries back off 10ms then 20ms of virtual time.
	if waited := sn.Runtime().Now() - before; waited < 30*time.Millisecond+fast {
		t.Fatalf("retries waited only %v (fail-fast cost %v)", waited, fast)
	}

	drainRemote(t, holder)
	if _, err := holder.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := Dial(addr, WithIterations(2))
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	drainRemote(t, rs)
	rs.Close()
}

// TestRemoteBackpressure pins the bounded send window: a slow consumer
// with a deep prefetch never has more REQs in flight than the server's
// window, on either side's accounting.
func TestRemoteBackpressure(t *testing.T) {
	sn := NewServiceNet(nil, ServiceNetConfig{})
	cl := serveCluster(t, sn)
	defer cl.Close()
	addr, err := Serve(cl,
		WithServiceNet(sn),
		WithSendWindow(3),
		Publish("train", namedDataset{space: "serve-bp", n: 256}, flatPipeline(time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer addr.Close()

	rs, err := Dial(addr, WithPrefetch(8), WithBatchSize(8), WithIterations(10))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n := 0
	for _, err := range rs.Batches(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		// A slow consumer: the server fills its window and must hold.
		_ = sn.Runtime().Sleep(ctx, 20*time.Millisecond)
	}
	if n != 10 {
		t.Fatalf("delivered %d, want 10", n)
	}
	if got := rs.Stats().MaxOutstanding; got > 3 {
		t.Fatalf("client window high-water %d > granted 3", got)
	}
	if got := addr.Stats().MaxPending; got > 3 {
		t.Fatalf("server window high-water %d > configured 3", got)
	}
	rs.Close()
}

// hedgeFingerprint is everything a hedged topology run produces that must
// be bit-identical across repeats: every client-observable quantity —
// deliveries, hedge/duplicate counters, wait percentiles, the stream's
// span on the virtual clock, and the fabric totals. The instant the
// kernel fully quiesces after teardown is deliberately not in here:
// closing a hedged client cancels the slow primary's loader mid-flight,
// and whether a worker already at its wake boundary squeezes in one last
// sample before observing the stop is an OS-thread race that shifts the
// quiesce point by a few work quanta without touching anything a client
// can measure.
type hedgeFingerprint struct {
	delivered int
	hedges    int64
	dups      int64
	waitP99   time.Duration
	span      time.Duration
	netBytes  int64
	netFlows  int64
}

// runHedgeTopology runs one slow-primary / fast-replica topology and
// returns its fingerprint. With hedge=false the client rides the slow
// primary alone.
func runHedgeTopology(t *testing.T, hedge bool) hedgeFingerprint {
	t.Helper()
	sn := NewServiceNet(nil, ServiceNetConfig{})
	slow := serveCluster(t, sn)
	defer slow.Close()
	fast := serveCluster(t, sn)
	defer fast.Close()

	// The primary's pipeline is 40× slower than the replica's: every
	// head-of-line batch stalls past the hedge delay.
	primary, err := Serve(slow, WithServiceNet(sn),
		Publish("train", namedDataset{space: "serve-hedge", n: 256}, flatPipeline(40*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, err := Serve(fast, WithServiceNet(sn),
		Publish("train", namedDataset{space: "serve-hedge", n: 256}, flatPipeline(time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	opts := []DialOption{WithBatchSize(4), WithIterations(8), WithPrefetch(2)}
	if hedge {
		opts = append(opts, WithHedge(replica, 5*time.Millisecond))
	}
	rs, err := Dial(primary, opts...)
	if err != nil {
		t.Fatal(err)
	}
	fp := hedgeFingerprint{delivered: drainRemote(t, rs)}
	cs := rs.Stats()
	fp.hedges, fp.dups, fp.waitP99 = cs.Hedges, cs.Duplicates, cs.WaitP99
	rep, err := rs.Close()
	if err != nil {
		t.Fatal(err)
	}
	fp.span = rep.TrainTime
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	ns := sn.Stats()
	fp.netBytes, fp.netFlows = ns.BytesMoved, ns.FlowsCompleted
	for i, cl := range []*Cluster{slow, fast} {
		if ps := cl.pool.Stats(); ps.Gets != ps.Puts {
			t.Fatalf("cluster %d pool leak after hedging: %+v", i, ps)
		}
	}
	return fp
}

func TestHedgeReducesTailLatency(t *testing.T) {
	unhedged := runHedgeTopology(t, false)
	hedged := runHedgeTopology(t, true)
	if hedged.delivered != 8 || unhedged.delivered != 8 {
		t.Fatalf("delivered %d / %d, want 8", hedged.delivered, unhedged.delivered)
	}
	if hedged.hedges == 0 {
		t.Fatal("hedged run fired no hedges")
	}
	if hedged.waitP99 >= unhedged.waitP99 {
		t.Fatalf("hedging did not cut tail latency: p99 %v (hedged) vs %v (unhedged)",
			hedged.waitP99, unhedged.waitP99)
	}
}

func TestHedgeDeterministic(t *testing.T) {
	a := runHedgeTopology(t, true)
	b := runHedgeTopology(t, true)
	if a != b {
		t.Fatalf("hedged topology diverged across runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestServeSharedWarmCache pins the server-side cache story: two remote
// clients of the same stream share the cluster's materialized cache, so
// the second client's batches are warm hits that skip preprocessing.
func TestServeSharedWarmCache(t *testing.T) {
	sn := NewServiceNet(nil, ServiceNetConfig{})
	cl := serveCluster(t, sn, WithMaterializedCache(1<<30).(ClusterOption))
	defer cl.Close()
	addr, err := Serve(cl,
		WithServiceNet(sn),
		Publish("train", namedDataset{space: "serve-warm", n: 64}, flatPipeline(5*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer addr.Close()

	cold, err := Dial(addr, WithBatchSize(8), WithEpochs(1))
	if err != nil {
		t.Fatal(err)
	}
	drainRemote(t, cold)
	cold.Close()
	fills := cl.Stats().MatCache.Fills
	if fills == 0 {
		t.Fatal("cold client materialized nothing")
	}

	warm, err := Dial(addr, WithBatchSize(8), WithEpochs(1))
	if err != nil {
		t.Fatal(err)
	}
	start := sn.Runtime().Now()
	drainRemote(t, warm)
	warmTime := sn.Runtime().Now() - start
	warm.Close()
	mc := cl.Stats().MatCache
	if mc.Hits == 0 {
		t.Fatalf("warm client hit nothing: %+v", mc)
	}
	if mc.Saved <= 0 {
		t.Fatalf("warm client saved no preprocessing time: %+v", mc)
	}
	_ = warmTime
}

// TestServeChaosLinkFlap is the chaos-composability regression: a
// link-flap scenario against the server's NIC degrades the client's
// batch-wait tail while active and recovers after, bit-identically
// across runs.
func TestServeChaosLinkFlap(t *testing.T) {
	type flapFingerprint struct {
		preMax, flapMax, postMax time.Duration
		now                      time.Duration
		netBytes                 int64
	}
	run := func() flapFingerprint {
		sn := NewServiceNet(nil, ServiceNetConfig{})
		aux := serveCluster(t, sn)
		defer aux.Close()
		cl := serveCluster(t, sn)
		defer cl.Close()
		// Fleet index 0 is a bystander; the registered "link-flap"
		// scenario targets fleet index 1 — the server under test.
		bystander, err := Serve(aux, WithServiceNet(sn),
			Publish("train", serveDataset{space: "flap-aux", n: 256}, flatPipeline(time.Millisecond)))
		if err != nil {
			t.Fatal(err)
		}
		defer bystander.Close()
		addr, err := Serve(cl, WithServiceNet(sn),
			WithChaosScenario("link-flap"),
			Publish("train", serveDataset{space: "flap", n: 512}, flatPipeline(time.Millisecond)))
		if err != nil {
			t.Fatal(err)
		}
		defer addr.Close()

		rs, err := Dial(addr, WithBatchSize(32), WithIterations(1000), WithPrefetch(2))
		if err != nil {
			t.Fatal(err)
		}
		var fp flapFingerprint
		ctx := context.Background()
		prev := sn.Runtime().Now()
		for _, err := range rs.Batches(ctx) {
			if err != nil {
				t.Fatal(err)
			}
			now := sn.Runtime().Now()
			wait := now - prev
			prev = now
			// The flap degrades the NIC 8× from t=2s to t=4s (anchored at
			// the first open). Windows skip the cold start (disk-bound
			// first epoch) and the restore boundary.
			switch {
			case now > 500*time.Millisecond && now < 2*time.Second:
				fp.preMax = max(fp.preMax, wait)
			case now > 2*time.Second && now < 4*time.Second:
				fp.flapMax = max(fp.flapMax, wait)
			case now > 4500*time.Millisecond:
				fp.postMax = max(fp.postMax, wait)
			}
		}
		if _, err := rs.Close(); err != nil {
			t.Fatal(err)
		}
		if err := addr.Close(); err != nil {
			t.Fatal(err)
		}
		fp.now = sn.Runtime().Now()
		fp.netBytes = sn.Stats().BytesMoved
		return fp
	}

	a := run()
	if a.preMax == 0 || a.flapMax == 0 || a.postMax == 0 {
		t.Fatalf("run did not span the flap window: %+v", a)
	}
	if a.flapMax < 2*a.preMax {
		t.Fatalf("flap did not degrade batch waits: pre %v, during %v", a.preMax, a.flapMax)
	}
	if a.postMax >= a.flapMax {
		t.Fatalf("link did not recover: during %v, after %v", a.flapMax, a.postMax)
	}
	b := run()
	if a != b {
		t.Fatalf("chaos run diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestStreamAllManyClients runs the N-trainers × one-fleet topology on a
// single kernel and pins its determinism fingerprint across runs. CI runs
// this under -race.
func TestStreamAllManyClients(t *testing.T) {
	const clients = 16
	type clientFP struct {
		Batches int
		Hedges  int64
		MaxOut  int
	}
	type fingerprint struct {
		Clients  [clients]clientFP
		Now      time.Duration
		NetBytes int64
		NetFlows int64
	}
	run := func() fingerprint {
		sn := NewServiceNet(nil, ServiceNetConfig{})
		cl := serveCluster(t, sn, WithEnv(EnvConfig{Cores: 16, GPUs: 1}).(ClusterOption))
		defer cl.Close()
		addr, err := Serve(cl, WithServiceNet(sn),
			Publish("train", namedDataset{space: "serve-fleet", n: 512}, flatPipeline(time.Millisecond)))
		if err != nil {
			t.Fatal(err)
		}
		defer addr.Close()

		sessions := make([]*RemoteSession, clients)
		for i := range sessions {
			rs, err := Dial(addr,
				WithBatchSize(4+i%3),
				WithIterations(6),
				WithSeed(uint64(i+1)),
				WithPrefetch(1+i%4))
			if err != nil {
				t.Fatal(err)
			}
			sessions[i] = rs
		}
		var fp fingerprint
		ctx := context.Background()
		StreamAll(ctx, sessions, func(i int, rs *RemoteSession) {
			n := 0
			var last *Batch
			for b, err := range rs.Batches(ctx) {
				if err != nil {
					t.Error(err)
					return
				}
				n++
				last = b
				// Stagger consumption so clients interleave on the fabric.
				_ = sn.Runtime().Sleep(ctx, time.Duration(1+i%5)*time.Millisecond)
			}
			if last != nil {
				last.Release()
			}
			fp.Clients[i].Batches = n
		})
		for i, rs := range sessions {
			cs := rs.Stats()
			fp.Clients[i].Hedges = cs.Hedges
			fp.Clients[i].MaxOut = cs.MaxOutstanding
			if _, err := rs.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := addr.Close(); err != nil {
			t.Fatal(err)
		}
		fp.Now = sn.Runtime().Now()
		ns := sn.Stats()
		fp.NetBytes, fp.NetFlows = ns.BytesMoved, ns.FlowsCompleted
		if ps := cl.pool.Stats(); ps.Gets != ps.Puts {
			t.Fatalf("pool leak across %d clients: %+v", clients, ps)
		}
		return fp
	}
	a := run()
	for i := range a.Clients {
		if a.Clients[i].Batches != 6 {
			t.Fatalf("client %d delivered %d, want 6", i, a.Clients[i].Batches)
		}
	}
	b := run()
	if a != b {
		t.Fatalf("fleet run diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestServeDialConfigErrors(t *testing.T) {
	sn := NewServiceNet(nil, ServiceNetConfig{})
	cl := serveCluster(t, sn)
	defer cl.Close()
	pub := Publish("train", namedDataset{space: "serve-cfg", n: 256}, flatPipeline(time.Millisecond))

	wantConfigErr := func(name, option string, err error) {
		t.Helper()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: got %v, want *ConfigError", name, err)
		}
		if ce.Option != option {
			t.Fatalf("%s: offending option %q, want %q", name, ce.Option, option)
		}
	}

	_, err := Serve(cl, WithServiceNet(sn))
	wantConfigErr("no publish", "Publish", err)
	_, err = Serve(cl, WithServiceNet(sn), Publish("train", nil, nil))
	wantConfigErr("nil dataset", "Publish", err)
	_, err = Serve(cl, WithServiceNet(NewServiceNet(nil, ServiceNetConfig{})), pub)
	wantConfigErr("foreign runtime", "WithServiceNet", err)
	_, err = Serve(cl, WithServiceNet(sn), pub,
		WithChaos(CrashNode(0, time.Second, 2*time.Second)))
	wantConfigErr("consumer chaos kind", "WithChaos", err)
	_, err = Serve(cl, WithServiceNet(sn), pub,
		WithChaos(FlapLink(7, time.Second, 8, time.Second)))
	wantConfigErr("link target beyond fleet", "WithChaos", err)

	queued, err := NewCluster(
		WithRuntime(sn.Runtime()).(ClusterOption),
		WithEnv(EnvConfig{Cores: 4, GPUs: 1}).(ClusterOption),
		WithMaxSessions(1),
		WithAdmission(AdmitQueue))
	if err != nil {
		t.Fatal(err)
	}
	defer queued.Close()
	_, err = Serve(queued, WithServiceNet(sn), pub)
	wantConfigErr("queueing cluster", "Serve", err)

	addr, err := Serve(cl, WithServiceNet(sn), pub,
		Publish("second", namedDataset{space: "serve-cfg2", n: 64}, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer addr.Close()
	_, err = Dial(addr)
	wantConfigErr("ambiguous stream", "WithStream", err)
	_, err = Dial(addr, WithStream("train"), WithPrefetch(-1))
	wantConfigErr("bad prefetch", "WithPrefetch", err)
	_, err = Dial(addr, WithStream("train"), WithHedge(addr, 0))
	wantConfigErr("zero hedge delay", "WithHedge", err)
	_, err = Dial(addr, WithStream("train"), WithHedge(addr, time.Millisecond))
	wantConfigErr("self hedge", "WithHedge", err)
	foreign, err := Serve(serveCluster(t, NewServiceNet(nil, ServiceNetConfig{})),
		Publish("train", namedDataset{space: "serve-cfg3", n: 64}, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer foreign.Close()
	_, err = Dial(addr, WithStream("train"), WithHedge(foreign, time.Millisecond))
	wantConfigErr("cross-fabric hedge", "WithHedge", err)
	_, err = Dial(addr, WithStream("train"), WithBatchSize(-1))
	wantConfigErr("bad batch size", "WithBatchSize", err)

	// Typed service errors satisfy errors.Is against the root re-exports.
	if !errors.Is(ErrServerOverloaded, ErrServerOverloaded) || ErrUnauthorized == nil || ErrQuotaExceeded == nil {
		t.Fatal("typed service errors must be re-exported sentinels")
	}
}

// TestRemoteSessionLifecycle pins the Session-compatible lifecycle rules.
func TestRemoteSessionLifecycle(t *testing.T) {
	sn := NewServiceNet(nil, ServiceNetConfig{})
	cl := serveCluster(t, sn)
	defer cl.Close()
	addr, err := Serve(cl, WithServiceNet(sn),
		Publish("train", namedDataset{space: "serve-life", n: 64}, flatPipeline(time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer addr.Close()

	rs, err := Dial(addr, WithIterations(3), WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	drainRemote(t, rs)
	for _, err := range rs.Batches(context.Background()) {
		if !errors.Is(err, ErrSessionConsumed) {
			t.Fatalf("second consume: got %v, want ErrSessionConsumed", err)
		}
	}
	if _, err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	for _, err := range rs.Batches(context.Background()) {
		if !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("consume after close: got %v, want ErrSessionClosed", err)
		}
	}

	// Breaking out early cancels the stream; the server session closes.
	rs2, err := Dial(addr, WithIterations(50), WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range rs2.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	if _, err := rs2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := addr.Stats().StreamsActive; got != 0 {
		t.Fatalf("%d streams still active after early stop", got)
	}
	_ = fmt.Sprintf("%v", rs2.Stats())
}
