// Package minato is the public API of MinatoLoader-Go, a reproduction of
// "MinatoLoader: Accelerating Machine Learning Training Through Efficient
// Data Preprocessing" (EUROSYS '26).
//
// MinatoLoader is a data loader that eliminates head-of-line blocking in
// training input pipelines: a per-sample timeout classifies samples as fast
// or slow on the fly, batches are built from whichever samples are ready,
// and slow samples finish preprocessing in the background and join later
// batches. An adaptive scheduler grows and shrinks the preprocessing worker
// pool to track GPU demand.
//
// The package re-exports the building blocks from internal packages:
//
//   - the loader itself (New, Config) plus the paper's baselines
//     (PyTorchLoader, DALILoader, PecanLoader) for comparison;
//   - the simulated substrate it runs on (runtimes, testbeds, devices),
//     since Go has no CUDA/PyTorch stack — see DESIGN.md for the
//     substitution table;
//   - the paper's workloads, the trainer, and the experiment registry that
//     regenerates every table and figure of the evaluation.
//
// The v2 API is session-centric. A session over a custom dataset streams
// batches through a context-aware iterator:
//
//	sess, err := minato.Open(dataset,
//	    minato.WithPipeline(pipeline),
//	    minato.WithBatchSize(64),
//	    minato.WithIterations(1000),
//	)
//	for batch, err := range sess.Batches(ctx) { ... }
//	rep, err := sess.Close()
//
// Full training sessions resolve workloads and loader backends through
// the registries (RegisterLoader / RegisterWorkload):
//
//	rep, err := minato.Train("speech-3s",
//	    minato.WithLoader("pytorch"),
//	    minato.WithHardware(minato.ConfigA()),
//	)
//	// rep.TrainTime, rep.AvgGPUUtil, ...
//
// Many concurrent sessions share one machine through a Cluster — one
// runtime, worker pool, page cache, and sample pool, multiplexed across
// tenants with admission control and priority-weighted worker arbitration:
//
//	cluster, err := minato.NewCluster(
//	    minato.WithHardware(minato.ConfigA()),
//	    minato.WithMaxSessions(16),
//	)
//	sess, err := cluster.Open(dataset, minato.WithPriority(2))
//	rep, err := cluster.Train("speech-3s", minato.WithLoader("pytorch"))
//
// Open and Train are thin wrappers over an implicit single-session
// cluster. API misuse surfaces as typed errors — *ConfigError plus the
// sentinels ErrSessionConsumed, ErrSessionClosed, ErrClusterSaturated,
// ErrClusterClosed; see errors.go for the taxonomy.
//
// Multi-node data-parallel training runs through TrainMultiNode: each
// node is a full testbed with its own loader over a dataset shard, and
// gradient all-reduce runs as ring-reduce flows over a simulated cluster
// interconnect that dataset fetches contend with:
//
//	rep, err := minato.TrainMultiNode("speech-3s",
//	    minato.WithNodes(4),
//	    minato.WithLoader("minato"),
//	)
//	// rep.StepTime(), rep.NetworkStallShare(), rep.PerNode, ...
//
// The v1 shims New, Simulate, and BaselineFactory were removed in v3 —
// migrate to Open, Train/TrainWorkload, and LoaderByName.
//
// For embedding the loader around custom datasets and pipelines, see
// examples/quickstart, examples/multitenant, and examples/multinode;
// README.md has the quickstart walkthrough and DESIGN.md the simulation
// substitution table.
package minato

import (
	"time"

	"github.com/minatoloader/minato/internal/core"
	"github.com/minatoloader/minato/internal/data"
	"github.com/minatoloader/minato/internal/dataset"
	"github.com/minatoloader/minato/internal/device"
	"github.com/minatoloader/minato/internal/gpu"
	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loader"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/matcache"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/storage"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/transform"
	"github.com/minatoloader/minato/internal/workload"
)

// Core vocabulary types.
type (
	// Sample is one training example flowing through a pipeline.
	Sample = data.Sample
	// Key identifies a stored object (sample bytes, paired modality)
	// without allocating: a constant namespace string plus an index.
	Key = data.Key
	// Features are the hidden cost-model inputs of a synthetic sample.
	Features = data.Features
	// Batch is a set of preprocessed samples ready for training.
	Batch = data.Batch
	// Transform is one preprocessing step.
	Transform = transform.Transform
	// Pipeline is an ordered list of transforms with budget semantics.
	Pipeline = transform.Pipeline
	// Dataset enumerates samples.
	Dataset = dataset.Dataset
	// Spec describes what a loader serves.
	Spec = loader.Spec
	// Env bundles the hardware a loader runs on.
	Env = loader.Env
	// DataLoader is the interface all loaders implement.
	DataLoader = loader.Loader
	// Config holds MinatoLoader's tuning knobs.
	Config = core.Config
	// Loader is MinatoLoader itself.
	Loader = core.Loader
	// Workload is one end-to-end training task.
	Workload = workload.Workload
	// Report is a training session's outcome.
	Report = trainer.Report
	// Params tunes what a session records.
	Params = trainer.Params
	// Factory builds loaders for training sessions.
	Factory = trainer.Factory
	// HardwareConfig describes a testbed.
	HardwareConfig = hardware.Config
	// CacheStats is a snapshot of page-cache counters (whole-cache or
	// per-tenant, depending on where it came from).
	CacheStats = storage.CacheStats
	// MatCacheStats is a snapshot of the materialized preprocessed-sample
	// cache (see WithMaterializedCache): hits, fills, evictions, and the
	// preprocessing time hits saved.
	MatCacheStats = matcache.Stats
	// PoolStats is a snapshot of sample-pool activity.
	PoolStats = data.PoolStats
	// Testbed is an instantiated simulated machine.
	Testbed = hardware.Testbed
	// Runtime is the virtual/real time abstraction.
	Runtime = simtime.Runtime
)

// DefaultConfig returns the paper's MinatoLoader configuration (§5.1).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewTransform builds a custom preprocessing step from a cost model and a
// size effect (either may be nil).
func NewTransform(name string, cost func(*Sample) time.Duration, size func(*Sample) float64) Transform {
	return transform.NewTransform(name, cost, size)
}

// NewPipeline builds a preprocessing pipeline.
func NewPipeline(name string, ts ...Transform) *Pipeline { return transform.NewPipeline(name, ts...) }

// NewVirtualRuntime returns the deterministic discrete-event runtime used
// by experiments: simulated time advances only when all tasks are parked.
func NewVirtualRuntime() *simtime.Virtual { return simtime.NewVirtual() }

// NewRealRuntime returns a wall-clock runtime with the given time
// compression (1 = real time).
func NewRealRuntime(scale float64) *simtime.Real { return simtime.NewReal(scale) }

// NewTestbed instantiates the devices for a hardware config.
func NewTestbed(rt Runtime, cfg HardwareConfig) *Testbed { return hardware.NewTestbed(rt, cfg) }

// ConfigA is the paper's 128-core, 4×A100 server (§3).
func ConfigA() HardwareConfig { return hardware.ConfigA() }

// ConfigB is the paper's 80-core, 8×V100 server (§3).
func ConfigB() HardwareConfig { return hardware.ConfigB() }

// The paper's workloads (§2.2, Table 3).

// ImageSegmentationWorkload is KiTS19 → 3D-UNet.
func ImageSegmentationWorkload(seed uint64) Workload { return workload.ImageSegmentation(seed) }

// ObjectDetectionWorkload is COCO → Mask R-CNN.
func ObjectDetectionWorkload(seed uint64) Workload { return workload.ObjectDetection(seed) }

// SpeechWorkload is LibriSpeech → RNN-T with the given HeavyStep duration
// (3s or 10s).
func SpeechWorkload(seed uint64, heavy time.Duration) Workload { return workload.Speech(seed, heavy) }

// Loader factories for training sessions.

// MinatoFactory builds MinatoLoader with the paper's defaults.
func MinatoFactory() Factory { return loaders.Minato(core.DefaultConfig()) }

// MinatoFactoryWith builds MinatoLoader with a custom config.
func MinatoFactoryWith(cfg Config) Factory { return loaders.Minato(cfg) }

// AllFactories returns the paper's four systems in comparison order.
func AllFactories() []Factory { return loaders.Defaults() }

// Synthetic datasets (§2.2).

// KiTS19 returns the synthetic kidney-tumor CT dataset (≈29 GB).
func KiTS19(seed uint64) Dataset { return dataset.NewKiTS19(seed) }

// COCO returns the synthetic COCO 2017 train split (≈58 GB).
func COCO(seed uint64) Dataset { return dataset.NewCOCO(seed) }

// LibriSpeech returns the synthetic LibriSpeech corpus with every n-th
// sample heavy.
func LibriSpeech(seed uint64, heavyEvery int) Dataset {
	return dataset.NewLibriSpeech(seed, heavyEvery)
}

// SubsetDataset restricts a dataset to its first n samples.
func SubsetDataset(d Dataset, n int) Dataset { return dataset.Subset(d, n) }

// ReplicateDataset enlarges a dataset by a factor with distinct storage
// keys (§5.5's 230 GB variant).
func ReplicateDataset(d Dataset, factor int) Dataset { return dataset.Replicate(d, factor) }

// ShardDataset returns the i-th of n strided shards (distributed data
// parallelism, §6).
func ShardDataset(d Dataset, i, n int) Dataset { return dataset.Shard(d, i, n) }

// EnvConfig sizes a custom loader environment for library embedders who
// are not using one of the paper's testbeds.
type EnvConfig struct {
	// Cores is the CPU pool size (default 8).
	Cores int
	// GPUs is the number of training consumers (default 1).
	GPUs int
	// DiskBandwidth is storage throughput in bytes/s (default 2 GB/s).
	DiskBandwidth float64
	// CacheBytes is the page-cache capacity (default 8 GiB).
	CacheBytes int64
}

// NewEnv builds a loader environment on rt with the given sizing. The
// returned Env is ready for New; the caller drives consumption via
// Loader.Next and waits on Env.WG for shutdown. Sessions opened through
// Open manage all of this automatically.
func NewEnv(rt Runtime, cfg EnvConfig) *Env {
	env, _, _ := buildEnv(rt, cfg)
	return env
}

// buildEnv is NewEnv keeping handles to the disk and cache so sessions can
// report storage statistics.
func buildEnv(rt Runtime, cfg EnvConfig) (*Env, *storage.Disk, *storage.PageCache) {
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	if cfg.GPUs <= 0 {
		cfg.GPUs = 1
	}
	if cfg.DiskBandwidth <= 0 {
		cfg.DiskBandwidth = 2e9
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 8 << 30
	}
	disk := storage.NewDisk(rt, "disk", cfg.DiskBandwidth, 2)
	cache := storage.NewPageCache(cfg.CacheBytes)
	env := &Env{
		RT:    rt,
		CPU:   device.New(rt, "cpu", float64(cfg.Cores)),
		GPUs:  gpu.Pool(rt, cfg.GPUs, gpu.A100, 40<<30),
		Store: &storage.Store{Disk: disk, Cache: cache},
		WG:    simtime.NewWaitGroup(rt),
	}
	return env, disk, cache
}
