// Benchmarks regenerating the paper's tables and figures (one benchmark
// per artifact, run in Quick mode so the full suite completes in about a
// minute) plus microbenchmarks of the hot paths.
//
//	go test -bench=. -benchmem
//
// Custom metrics:
//   - speedup_x: MinatoLoader training-time speedup over the named baseline
//   - gpu_util_pct: average GPU utilization of the Minato run
package minato

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/experiments"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// benchExperiment runs a registered experiment once per b.N in Quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(experiments.Options{Seed: 1, Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkFig1b(b *testing.B)      { benchExperiment(b, "fig1b") }
func BenchmarkFig2(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11a(b *testing.B)     { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B)     { benchExperiment(b, "fig11b") }
func BenchmarkFig11c(b *testing.B)     { benchExperiment(b, "fig11c") }
func BenchmarkFig12(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkArtifactE1(b *testing.B) { benchExperiment(b, "e1") }

func BenchmarkDistributed(b *testing.B) { benchExperiment(b, "dist") }

func BenchmarkMultiNodeScenarios(b *testing.B) { benchExperiment(b, "multinode") }

// BenchmarkMultiNode is the multi-node tier: 2- and 8-node data-parallel
// clusters over the simulated interconnect, each rank consuming a fixed
// batch budget through its own loader while gradient ring-reduce flows and
// remote dataset fetches contend on the netsim fabric. Reported metrics:
// simulator wall throughput (samples/sec_wall), whole-cluster step time in
// simulated milliseconds (step_ms — must stay bit-stable), and the
// network-stall share of cluster consumer time (net_stall_pct).
func BenchmarkMultiNode(b *testing.B) {
	// The iteration budget is per-node (each node runs its own loader over
	// its shard), so the per-rank work is constant across tiers and total
	// simulated work scales linearly with the node count.
	const batchesPerNode = 15
	for _, nodes := range []int{2, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			w := workload.Speech(1, 3*time.Second).WithIterations(batchesPerNode)
			var samples int64
			var rep *MultiNodeReport
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = TrainMultiNodeWorkload(w, WithNodes(nodes), WithGPUs(1))
				if err != nil {
					b.Fatal(err)
				}
				samples += rep.Samples
			}
			b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/sec_wall")
			b.ReportMetric(rep.StepTime().Seconds()*1000, "step_ms")
			b.ReportMetric(100*rep.NetworkStallShare(), "net_stall_pct")
		})
	}
}

// BenchmarkChurn is the fault-injection tier: an 8-node cluster under three
// regimes — balanced (no chaos, the SLO floor), flash-crowd (a worker stall
// plus a disk brownout striking mid-run), and crash-recover (node 3 crashes
// at t=5s and rejoins at t=8s). Reported metrics: tail step time in
// simulated milliseconds (p99_step_ms) and measured fault recovery
// (recovery_ms) — both must stay bit-stable run to run.
func BenchmarkChurn(b *testing.B) {
	const batchesPerNode = 15
	scripts := []struct {
		name   string
		script ChaosScript
	}{
		{"balanced", ChaosScript{}},
		{"flash-crowd", ComposeChaos("flash-crowd",
			StallWorkers(0, 5*time.Second, 2, 5*time.Second),
			BrownoutDisk(5*time.Second, 8, 10*time.Second),
		)},
		{"crash-recover", CrashNode(3, 5*time.Second, 8*time.Second)},
	}
	for _, sc := range scripts {
		b.Run(sc.name, func(b *testing.B) {
			w := workload.Speech(1, 3*time.Second).WithIterations(batchesPerNode)
			opts := []Option{WithNodes(8), WithGPUs(1)}
			if len(sc.script.Events) > 0 {
				opts = append(opts, WithChaos(sc.script))
			}
			var rep *MultiNodeReport
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = TrainMultiNodeWorkload(w, opts...)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.StepP99.Seconds()*1000, "p99_step_ms")
			b.ReportMetric(rep.RecoveryTime().Seconds()*1000, "recovery_ms")
		})
	}
}

func BenchmarkAblationTimeout(b *testing.B) { benchExperiment(b, "abl-timeout") }
func BenchmarkAblationWorkers(b *testing.B) { benchExperiment(b, "abl-workers") }
func BenchmarkAblationResume(b *testing.B)  { benchExperiment(b, "abl-resume") }
func BenchmarkAblationOrder(b *testing.B)   { benchExperiment(b, "abl-order") }

// BenchmarkHeadlineSpeedup runs the paper's headline comparison (Speech-3s
// on 4×A100) at reduced iteration count and reports the speedup factors as
// custom metrics.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	cfg := ConfigA()
	w := workload.Speech(1, 3*time.Second).WithIterations(200)
	for i := 0; i < b.N; i++ {
		times := map[string]float64{}
		var gpuUtil float64
		for _, f := range AllFactories() {
			rep, err := TrainWorkload(w, WithLoaderFactory(f), WithHardware(cfg))
			if err != nil {
				b.Fatal(err)
			}
			times[f.Name] = rep.TrainTime.Seconds()
			if f.Name == "minato" {
				gpuUtil = rep.AvgGPUUtil
			}
		}
		b.ReportMetric(times["pytorch"]/times["minato"], "speedup_vs_pytorch_x")
		b.ReportMetric(times["dali"]/times["minato"], "speedup_vs_dali_x")
		b.ReportMetric(gpuUtil, "minato_gpu_util_pct")
	}
}

// BenchmarkHeadlineSpeedupTraced is the headline comparison with end-to-end
// tracing attached to every run. Tracing only records — it must not perturb
// the simulation — so the simulated-time metrics here have to be
// bit-identical to BenchmarkHeadlineSpeedup's, and the wall cost (ns/op) is
// the tracer's overhead. scripts/bench.sh gates both through `benchjson
// overhead`: >5% wall over the untraced headline fails, as does any drift
// in the shared metrics.
func BenchmarkHeadlineSpeedupTraced(b *testing.B) {
	cfg := ConfigA()
	w := workload.Speech(1, 3*time.Second).WithIterations(200)
	sink := NewTraceSink()
	for i := 0; i < b.N; i++ {
		times := map[string]float64{}
		var gpuUtil, spans float64
		for _, f := range AllFactories() {
			sink.Reset()
			rep, err := TrainWorkload(w, WithLoaderFactory(f), WithHardware(cfg), WithTracing(sink))
			if err != nil {
				b.Fatal(err)
			}
			times[f.Name] = rep.TrainTime.Seconds()
			if f.Name == "minato" {
				gpuUtil = rep.AvgGPUUtil
				spans = float64(sink.Len())
			}
		}
		b.ReportMetric(times["pytorch"]/times["minato"], "speedup_vs_pytorch_x")
		b.ReportMetric(times["dali"]/times["minato"], "speedup_vs_dali_x")
		b.ReportMetric(gpuUtil, "minato_gpu_util_pct")
		b.ReportMetric(spans, "trace_spans")
	}
}

// BenchmarkLoaderSessionThroughput measures simulator throughput: samples
// processed per wall second across a full Minato session.
func BenchmarkLoaderSessionThroughput(b *testing.B) {
	cfg := ConfigA().WithGPUs(2)
	w := workload.Speech(1, 3*time.Second).WithIterations(100)
	var samples int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := TrainWorkload(w, WithLoaderFactory(MinatoFactory()), WithHardware(cfg))
		if err != nil {
			b.Fatal(err)
		}
		samples += rep.Samples
	}
	b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/sec_wall")
}

// BenchmarkFleetSession is the scale-out tier: one Minato session feeding
// 8, 32, and 64 simulated GPUs through per-GPU batch queues — the
// configuration where queue contention, not preprocessing, decides
// simulator throughput. Each GPU consumes a fixed number of batches so the
// simulated work grows with the fleet; the reported metric is samples
// processed per wall second.
func BenchmarkFleetSession(b *testing.B) {
	const batchesPerGPU = 25
	for _, gpus := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("gpus=%d", gpus), func(b *testing.B) {
			cfg := ConfigA().WithGPUs(gpus)
			w := workload.Speech(1, 3*time.Second).WithIterations(batchesPerGPU * gpus)
			var samples int64
			var gpuUtil float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := TrainWorkload(w, WithLoaderFactory(MinatoFactory()), WithHardware(cfg))
				if err != nil {
					b.Fatal(err)
				}
				samples += rep.Samples
				gpuUtil = rep.AvgGPUUtil
			}
			b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/sec_wall")
			b.ReportMetric(gpuUtil, "gpu_util_pct")
		})
	}
}

// tenantCorpus is the shared corpus of the cluster-tenant tier: a pooled,
// allocation-free dataset (Filler) whose storage keys are common to every
// tenant, so co-running sessions share one warm-up pass through the page
// cache — the Seneca scenario the Cluster API exists for.
type tenantCorpus struct{ n int }

func (d tenantCorpus) Name() string { return "tenant-corpus" }
func (d tenantCorpus) Len() int     { return d.n }
func (d tenantCorpus) Sample(epoch, i int) *Sample {
	s := &Sample{}
	d.FillSample(epoch, i, s)
	return s
}
func (d tenantCorpus) FillSample(epoch, i int, s *Sample) {
	s.Index, s.Epoch = i, epoch
	s.Key = Key{Space: "tenant-corpus", Index: int64(i)}
	s.RawBytes, s.Bytes = 1<<20, 1<<20
}

// BenchmarkClusterTenants is the multi-tenant tier: 1, 4, and 16 concurrent
// sessions on one shared Cluster (the same ConfigA testbed for every tier),
// each streaming a fixed batch budget of a shared prepared corpus through
// its own consumer goroutine. Tenants share the page cache (single-flight
// fills, so the corpus is read from disk once, not once per tenant), the
// sample pool, and the fairly-arbitrated CPU workers. The reported metric
// is aggregate samples per wall second — the consolidation win of serving
// many sessions from one cluster instead of a private substrate per
// session. The 16-session tier is the acceptance bar: aggregate ≥ 3× the
// single-session rate on the same testbed.
func BenchmarkClusterTenants(b *testing.B) {
	const batchesPerSession = 50
	for _, tenants := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", tenants), func(b *testing.B) {
			var total int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl, err := NewCluster(WithHardware(ConfigA()))
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for t := 0; t < tenants; t++ {
					sess, err := cl.Open(tenantCorpus{n: 2048},
						WithBatchSize(32),
						WithIterations(batchesPerSession),
						WithGPUs(1),
						WithSeed(uint64(t+1)),
					)
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						for _, err := range sess.Batches(context.Background()) {
							if err != nil {
								b.Error(err)
								return
							}
						}
						rep, err := sess.Close()
						if err != nil {
							b.Error(err)
							return
						}
						atomic.AddInt64(&total, rep.Samples)
					}()
				}
				wg.Wait()
				if err := cl.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec_wall")
		})
	}
}

// warmBenchPipeline returns the warm-tier preprocessing pipeline. Each call
// builds a fresh Pipeline, but the signature is name-derived, so every
// tenant session shares one materialized key space.
func warmBenchPipeline() *Pipeline {
	return NewPipeline("warm-bench",
		NewTransform("heavy-step", func(*Sample) time.Duration { return 5 * time.Millisecond }, nil))
}

// BenchmarkWarmEpoch is the materialized-cache tier.
//
// epochs: one session, two epochs over a speech corpus with the cache
// enabled. Epoch 1 materializes, epoch 2 restores. Reported metrics are
// simulated epoch times (bit-stable run to run) and their ratio
// warm_speedup_x — the tentpole acceptance bar is ≥ 2.
//
// tenants: 1, 4, and 16 sessions warm-starting the same corpus on one
// cluster. Fills are single-flighted, so the corpus is preprocessed once
// regardless of tenant count; mat_hit_pct reports the resulting hit rate.
func BenchmarkWarmEpoch(b *testing.B) {
	b.Run("epochs", func(b *testing.B) {
		w := workload.Speech(1, 3*time.Second)
		ds := SubsetDataset(w.Dataset, 640)
		perEpoch := 640 / 32
		var coldMs, warmMs float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess, err := Open(ds,
				WithPipeline(w.Pipeline),
				WithBatchSize(32),
				WithEpochs(2),
				WithHardware(ConfigA()),
				WithMaterializedCache(4<<30),
			)
			if err != nil {
				b.Fatal(err)
			}
			var t1, t2 time.Duration
			n := 0
			for _, err := range sess.Batches(context.Background()) {
				if err != nil {
					b.Fatal(err)
				}
				n++
				switch n {
				case perEpoch:
					t1 = sess.env.RT.Now()
				case 2 * perEpoch:
					t2 = sess.env.RT.Now()
				}
			}
			if _, err := sess.Close(); err != nil {
				b.Fatal(err)
			}
			coldMs = t1.Seconds() * 1000
			warmMs = (t2 - t1).Seconds() * 1000
		}
		b.ReportMetric(coldMs, "cold_epoch_ms")
		b.ReportMetric(warmMs, "warm_epoch_ms")
		b.ReportMetric(coldMs/warmMs, "warm_speedup_x")
		b.ReportMetric(float64(b.N*640*2)/b.Elapsed().Seconds(), "samples/sec_wall")
	})

	const batchesPerSession = 50
	for _, tenants := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			var total int64
			var hitPct float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl, err := NewCluster(WithHardware(ConfigA()), WithMaterializedCache(4<<30))
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for t := 0; t < tenants; t++ {
					sess, err := cl.Open(tenantCorpus{n: 2048},
						WithPipeline(warmBenchPipeline()),
						WithBatchSize(32),
						WithIterations(batchesPerSession),
						WithGPUs(1),
						WithSeed(1), // same order: tenants warm the same shard
					)
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						for _, err := range sess.Batches(context.Background()) {
							if err != nil {
								b.Error(err)
								return
							}
						}
						rep, err := sess.Close()
						if err != nil {
							b.Error(err)
							return
						}
						atomic.AddInt64(&total, rep.Samples)
					}()
				}
				wg.Wait()
				hitPct = 100 * cl.Stats().MatCache.HitRate()
				if err := cl.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec_wall")
			b.ReportMetric(hitPct, "mat_hit_pct")
		})
	}
}

// BenchmarkPipelineCostModel measures the pure cost-model path (no
// simulation), the hot function of profiling runs.
func BenchmarkPipelineCostModel(b *testing.B) {
	w := workload.ImageSegmentation(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := w.Dataset.Sample(0, i%w.Dataset.Len())
		_ = w.Pipeline.TotalCost(s)
	}
}

// BenchmarkServe is the disaggregated-service tier: one preprocessing
// server (an 8-core cluster on a shared fabric) feeding 1, 16, and 256
// remote clients, each streaming a fixed batch budget over netsim through
// Dial. All clients consume concurrently on one kernel via StreamAll, so
// the tier measures the server's admission, fair-share, and send-window
// machinery under real contention. Reported metrics are aggregate samples
// per wall second and the worst client's p99 batch wait in (virtual)
// milliseconds — the queueing delay a training step actually sees.
func BenchmarkServe(b *testing.B) {
	const batchesPerClient = 8
	for _, clients := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var samples int64
			var p99 time.Duration
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sn := NewServiceNet(nil, ServiceNetConfig{Endpoints: clients + 8})
				cl, err := NewCluster(
					WithRuntime(sn.Runtime()).(ClusterOption),
					WithEnv(EnvConfig{Cores: 8, GPUs: 1}).(ClusterOption),
				)
				if err != nil {
					b.Fatal(err)
				}
				addr, err := Serve(cl, WithServiceNet(sn),
					Publish("corpus", tenantCorpus{n: 2048},
						NewPipeline("serve-bench",
							NewTransform("step", func(*Sample) time.Duration { return time.Millisecond }, nil))))
				if err != nil {
					b.Fatal(err)
				}
				sessions := make([]*RemoteSession, clients)
				for c := range sessions {
					rs, err := Dial(addr,
						WithBatchSize(32),
						WithIterations(batchesPerClient),
						WithSeed(uint64(c+1)),
						WithPrefetch(4),
					)
					if err != nil {
						b.Fatal(err)
					}
					sessions[c] = rs
				}
				StreamAll(context.Background(), sessions, func(_ int, s *RemoteSession) {
					var last *Batch
					for bt, err := range s.Batches(context.Background()) {
						if err != nil {
							b.Error(err)
							return
						}
						last = bt
					}
					if last != nil {
						last.Release()
					}
				})
				for _, s := range sessions {
					if w := s.Stats().WaitP99; w > p99 {
						p99 = w
					}
					rep, err := s.Close()
					if err != nil {
						b.Fatal(err)
					}
					samples += rep.Samples
				}
				if err := addr.Close(); err != nil {
					b.Fatal(err)
				}
				if err := cl.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/sec_wall")
			b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99_batch_wait_ms")
		})
	}
}

// BenchmarkSimulateSmallSession measures end-to-end kernel overhead for a
// minimal session (the fixed cost every experiment pays).
func BenchmarkSimulateSmallSession(b *testing.B) {
	cfg := ConfigA().WithGPUs(1)
	w := workload.Speech(1, 3*time.Second).WithIterations(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainWorkload(w, WithLoaderFactory(MinatoFactory()), WithHardware(cfg)); err != nil {
			b.Fatal(err)
		}
	}
}

// Compile-time check: the trainer factory type matches the facade alias.
var _ trainer.Factory = Factory{}
