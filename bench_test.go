// Benchmarks regenerating the paper's tables and figures (one benchmark
// per artifact, run in Quick mode so the full suite completes in about a
// minute) plus microbenchmarks of the hot paths.
//
//	go test -bench=. -benchmem
//
// Custom metrics:
//   - speedup_x: MinatoLoader training-time speedup over the named baseline
//   - gpu_util_pct: average GPU utilization of the Minato run
package minato

import (
	"fmt"
	"testing"
	"time"

	"github.com/minatoloader/minato/internal/experiments"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

// benchExperiment runs a registered experiment once per b.N in Quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(experiments.Options{Seed: 1, Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkFig1b(b *testing.B)      { benchExperiment(b, "fig1b") }
func BenchmarkFig2(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11a(b *testing.B)     { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B)     { benchExperiment(b, "fig11b") }
func BenchmarkFig11c(b *testing.B)     { benchExperiment(b, "fig11c") }
func BenchmarkFig12(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkArtifactE1(b *testing.B) { benchExperiment(b, "e1") }

func BenchmarkDistributed(b *testing.B) { benchExperiment(b, "dist") }

func BenchmarkAblationTimeout(b *testing.B) { benchExperiment(b, "abl-timeout") }
func BenchmarkAblationWorkers(b *testing.B) { benchExperiment(b, "abl-workers") }
func BenchmarkAblationResume(b *testing.B)  { benchExperiment(b, "abl-resume") }
func BenchmarkAblationOrder(b *testing.B)   { benchExperiment(b, "abl-order") }

// BenchmarkHeadlineSpeedup runs the paper's headline comparison (Speech-3s
// on 4×A100) at reduced iteration count and reports the speedup factors as
// custom metrics.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	cfg := ConfigA()
	w := workload.Speech(1, 3*time.Second).WithIterations(200)
	for i := 0; i < b.N; i++ {
		times := map[string]float64{}
		var gpuUtil float64
		for _, f := range AllFactories() {
			rep, err := Simulate(cfg, w, f, Params{})
			if err != nil {
				b.Fatal(err)
			}
			times[f.Name] = rep.TrainTime.Seconds()
			if f.Name == "minato" {
				gpuUtil = rep.AvgGPUUtil
			}
		}
		b.ReportMetric(times["pytorch"]/times["minato"], "speedup_vs_pytorch_x")
		b.ReportMetric(times["dali"]/times["minato"], "speedup_vs_dali_x")
		b.ReportMetric(gpuUtil, "minato_gpu_util_pct")
	}
}

// BenchmarkLoaderSessionThroughput measures simulator throughput: samples
// processed per wall second across a full Minato session.
func BenchmarkLoaderSessionThroughput(b *testing.B) {
	cfg := ConfigA().WithGPUs(2)
	w := workload.Speech(1, 3*time.Second).WithIterations(100)
	var samples int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Simulate(cfg, w, MinatoFactory(), Params{})
		if err != nil {
			b.Fatal(err)
		}
		samples += rep.Samples
	}
	b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/sec_wall")
}

// BenchmarkFleetSession is the scale-out tier: one Minato session feeding
// 8, 32, and 64 simulated GPUs through per-GPU batch queues — the
// configuration where queue contention, not preprocessing, decides
// simulator throughput. Each GPU consumes a fixed number of batches so the
// simulated work grows with the fleet; the reported metric is samples
// processed per wall second.
func BenchmarkFleetSession(b *testing.B) {
	const batchesPerGPU = 25
	for _, gpus := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("gpus=%d", gpus), func(b *testing.B) {
			cfg := ConfigA().WithGPUs(gpus)
			w := workload.Speech(1, 3*time.Second).WithIterations(batchesPerGPU * gpus)
			var samples int64
			var gpuUtil float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := Simulate(cfg, w, MinatoFactory(), Params{})
				if err != nil {
					b.Fatal(err)
				}
				samples += rep.Samples
				gpuUtil = rep.AvgGPUUtil
			}
			b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/sec_wall")
			b.ReportMetric(gpuUtil, "gpu_util_pct")
		})
	}
}

// BenchmarkPipelineCostModel measures the pure cost-model path (no
// simulation), the hot function of profiling runs.
func BenchmarkPipelineCostModel(b *testing.B) {
	w := workload.ImageSegmentation(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := w.Dataset.Sample(0, i%w.Dataset.Len())
		_ = w.Pipeline.TotalCost(s)
	}
}

// BenchmarkSimulateSmallSession measures end-to-end kernel overhead for a
// minimal session (the fixed cost every experiment pays).
func BenchmarkSimulateSmallSession(b *testing.B) {
	cfg := ConfigA().WithGPUs(1)
	w := workload.Speech(1, 3*time.Second).WithIterations(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, w, MinatoFactory(), Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Compile-time check: the trainer factory type matches the facade alias.
var _ trainer.Factory = Factory{}
