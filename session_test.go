package minato

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// sessionDataset is a tiny in-memory dataset for session tests.
type sessionDataset struct{ n int }

func (d sessionDataset) Name() string { return "session-test" }
func (d sessionDataset) Len() int     { return d.n }
func (d sessionDataset) Sample(epoch, i int) *Sample {
	return &Sample{
		Index: i, Epoch: epoch,
		Key:      Key{Space: "session-test", Index: int64(i)},
		RawBytes: 1 << 16, Bytes: 1 << 16,
	}
}

func flatPipeline(cost time.Duration) *Pipeline {
	return NewPipeline("flat",
		NewTransform("step", func(*Sample) time.Duration { return cost }, nil))
}

func TestOpenDefaults(t *testing.T) {
	sess, err := Open(sessionDataset{n: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.spec.BatchSize; got != 32 {
		t.Errorf("default batch size = %d, want 32", got)
	}
	if sess.spec.Epochs != 1 || sess.spec.Iterations != 0 {
		t.Errorf("default budget = %d epochs / %d iterations, want 1/0",
			sess.spec.Epochs, sess.spec.Iterations)
	}
	if sess.spec.Seed != 1 {
		t.Errorf("default seed = %d, want 1", sess.spec.Seed)
	}
	if got := sess.ld.Name(); got != "minato" {
		t.Errorf("default loader = %q, want minato", got)
	}
	if got := len(sess.env.GPUs); got != 1 {
		t.Errorf("default GPUs = %d, want 1", got)
	}
}

func TestOpenValidation(t *testing.T) {
	cases := []struct {
		name string
		ds   Dataset
		opts []Option
		want string
	}{
		{"nil dataset", nil, nil, "requires a dataset"},
		{"negative batch", sessionDataset{n: 64}, []Option{WithBatchSize(-1)}, "batch size"},
		{"negative iterations", sessionDataset{n: 64}, []Option{WithIterations(-2)}, "iteration budget"},
		{"negative epochs", sessionDataset{n: 64}, []Option{WithEpochs(-2)}, "epoch budget"},
		{"batch exceeds dataset", sessionDataset{n: 8}, []Option{WithBatchSize(16)}, "exceeds dataset"},
		{"unknown loader", sessionDataset{n: 64}, []Option{WithLoader("tf.data")}, "unknown loader"},
		{"hw and env", sessionDataset{n: 64},
			[]Option{WithHardware(ConfigA()), WithEnv(EnvConfig{Cores: 2})}, "mutually exclusive"},
		{"name and factory", sessionDataset{n: 64},
			[]Option{WithLoader("pytorch"), WithLoaderFactory(MinatoFactory())}, "mutually exclusive"},
		{"config with baseline", sessionDataset{n: 64},
			[]Option{WithLoader("pytorch"), WithLoaderConfig(DefaultConfig())}, "WithLoaderConfig"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(tc.ds, tc.opts...)
			if err == nil {
				t.Fatal("Open succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBatchesDeliversBudget runs the ISSUE's acceptance scenario: the
// iterator yields exactly the configured budget on the virtual runtime for
// MinatoLoader and a registered baseline.
func TestBatchesDeliversBudget(t *testing.T) {
	for _, loaderName := range []string{"minato", "pytorch"} {
		t.Run(loaderName, func(t *testing.T) {
			sess, err := Open(sessionDataset{n: 256},
				WithPipeline(flatPipeline(2*time.Millisecond)),
				WithBatchSize(8),
				WithIterations(20),
				WithLoader(loaderName),
			)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for b, err := range sess.Batches(context.Background()) {
				if err != nil {
					t.Fatal(err)
				}
				if b.Size() != 8 {
					t.Fatalf("batch size %d, want 8", b.Size())
				}
				n++
			}
			if n != 20 {
				t.Fatalf("iterator yielded %d batches, want 20", n)
			}
			rep, err := sess.Close()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Batches != 20 || rep.Samples != 160 {
				t.Fatalf("report: %d batches / %d samples, want 20/160", rep.Batches, rep.Samples)
			}
			if rep.Loader != loaderName {
				t.Fatalf("report loader %q, want %q", rep.Loader, loaderName)
			}
			if rep.TrainTime <= 0 {
				t.Fatal("report has no delivery time")
			}
		})
	}
}

func TestBatchesEpochBudget(t *testing.T) {
	sess, err := Open(sessionDataset{n: 64},
		WithPipeline(flatPipeline(time.Millisecond)),
		WithBatchSize(16),
		WithEpochs(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 12 { // 64/16 × 3 epochs
		t.Fatalf("yielded %d batches, want 12", n)
	}
}

// TestBatchesEarlyBreak verifies that breaking out of the loop stops the
// loader: teardown completes inside the loop statement and the session's
// report reflects only the consumed prefix.
func TestBatchesEarlyBreak(t *testing.T) {
	sess, err := Open(sessionDataset{n: 256},
		WithPipeline(flatPipeline(2*time.Millisecond)),
		WithBatchSize(8),
		WithIterations(100),
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 5 {
			break
		}
	}
	// Close drains the session-owned kernel: it only returns once every
	// loader task has fully exited, so a leak would hang this test.
	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 5 {
		t.Fatalf("report counts %d batches, want 5", rep.Batches)
	}
	if v, ok := sess.rt.(interface{ Tasks() int }); ok {
		if left := v.Tasks(); left != 0 {
			t.Fatalf("%d loader tasks still alive after Close", left)
		}
	}
}

func TestBatchesContextCancel(t *testing.T) {
	sess, err := Open(sessionDataset{n: 256},
		WithPipeline(flatPipeline(2*time.Millisecond)),
		WithBatchSize(8),
		WithIterations(100),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	var sawErr error
	for _, err := range sess.Batches(ctx) {
		if err != nil {
			sawErr = err
			continue // the error must be the final yield
		}
		n++
		if n == 3 {
			cancel()
		}
	}
	if sawErr == nil {
		t.Fatal("cancelled iteration ended without an error")
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("yielded %v, want context.Canceled", sawErr)
	}
	if _, err := sess.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close error = %v, want context.Canceled", err)
	}
}

func TestBatchesSingleUse(t *testing.T) {
	sess, err := Open(sessionDataset{n: 64},
		WithPipeline(flatPipeline(time.Millisecond)),
		WithBatchSize(8), WithIterations(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, err := range sess.Batches(context.Background()) {
		if !errors.Is(err, ErrSessionConsumed) {
			t.Fatalf("second consumption yielded %v, want ErrSessionConsumed", err)
		}
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	for _, err := range sess.Batches(context.Background()) {
		if !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("post-Close consumption yielded %v, want ErrSessionClosed", err)
		}
	}
}

// TestBatchesMultiGPU drains a testbed session whose loader shards
// delivery across several per-GPU queues.
func TestBatchesMultiGPU(t *testing.T) {
	sess, err := Open(sessionDataset{n: 512},
		WithPipeline(flatPipeline(2*time.Millisecond)),
		WithBatchSize(8),
		WithIterations(24),
		WithHardware(ConfigA()),
		WithGPUs(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sess.env.GPUs); got != 2 {
		t.Fatalf("GPUs = %d, want 2", got)
	}
	n := 0
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 24 {
		t.Fatalf("yielded %d batches, want 24", n)
	}
}

func TestTrainResolvesThroughRegistry(t *testing.T) {
	rep, err := Train("speech-3s",
		WithLoader("pytorch"),
		WithIterations(20),
		WithGPUs(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loader != "pytorch" || rep.Workload != "speech-3s" {
		t.Fatalf("report %s × %s, want speech-3s × pytorch", rep.Workload, rep.Loader)
	}
	if rep.Batches != 20 {
		t.Fatalf("batches = %d, want 20", rep.Batches)
	}

	if _, err := Train("no-such-workload"); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unknown workload error = %v", err)
	}
	if _, err := Train("speech-3s", WithEnv(EnvConfig{})); err == nil {
		t.Fatal("Train accepted WithEnv")
	}
	if _, err := Train("speech-3s", WithRuntime(NewVirtualRuntime())); err == nil {
		t.Fatal("Train accepted WithRuntime")
	}
	if _, err := Train("speech-3s", WithPipeline(flatPipeline(time.Millisecond))); err == nil {
		t.Fatal("Train accepted WithPipeline")
	}
}

// TestTrainOversizedBatchErrors guards the drop-last degenerate case: a
// batch larger than the dataset must fail fast instead of spinning the
// index source forever.
func TestTrainOversizedBatchErrors(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Train("img-seg", WithBatchSize(10000), WithIterations(2))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "exceeds dataset") {
			t.Fatalf("error = %v, want oversized-batch error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Train hung on oversized batch size")
	}
}
