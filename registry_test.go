package minato

import (
	"context"
	"slices"
	"testing"
	"time"
)

// TestRegistryRoundTrip registers a custom loader and workload, resolves
// both by name, enumerates them, and runs them through the v2 entry
// points.
func TestRegistryRoundTrip(t *testing.T) {
	RegisterLoader("test-minato-lite", MinatoFactoryWith(func() Config {
		cfg := DefaultConfig()
		cfg.WarmupSamples = 8
		return cfg
	}()))
	RegisterWorkload("test-tiny-speech", func(seed uint64) Workload {
		w := SpeechWorkload(seed, 3*time.Second)
		return w.WithIterations(10)
	})

	if !slices.Contains(Loaders(), "test-minato-lite") {
		t.Fatalf("Loaders() = %v, missing test-minato-lite", Loaders())
	}
	if !slices.Contains(Workloads(), "test-tiny-speech") {
		t.Fatalf("Workloads() = %v, missing test-tiny-speech", Workloads())
	}
	f, ok := LoaderByName("test-minato-lite")
	if !ok || f.Name != "test-minato-lite" {
		t.Fatalf("LoaderByName = %+v, %v", f, ok)
	}
	w, ok := WorkloadByName("test-tiny-speech", 3)
	if !ok || w.Seed != 3 || w.Iterations != 10 {
		t.Fatalf("WorkloadByName = %+v, %v", w, ok)
	}

	// The registered pair drives a full training session end to end.
	rep, err := Train("test-tiny-speech", WithLoader("test-minato-lite"), WithGPUs(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loader != "test-minato-lite" || rep.Batches != 10 {
		t.Fatalf("report %s / %d batches, want test-minato-lite / 10", rep.Loader, rep.Batches)
	}

	// And the registered loader serves Open sessions by name.
	sess, err := Open(SubsetDataset(LibriSpeech(1, 5), 64),
		WithLoader("test-minato-lite"), WithBatchSize(8), WithIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("session yielded %d batches, want 4", n)
	}
}

func TestBuiltinsRegistered(t *testing.T) {
	for _, name := range []string{"pytorch", "pecan", "dali", "minato"} {
		if _, ok := LoaderByName(name); !ok {
			t.Errorf("built-in loader %q not registered", name)
		}
	}
	for _, name := range []string{"img-seg", "obj-det", "speech-3s", "speech-10s"} {
		if _, ok := WorkloadByName(name, 1); !ok {
			t.Errorf("built-in workload %q not registered", name)
		}
	}
}

func TestDuplicateLoaderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterLoader did not panic")
		}
	}()
	RegisterLoader("minato", MinatoFactory())
}

func TestDuplicateWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterWorkload did not panic")
		}
	}()
	RegisterWorkload("img-seg", ImageSegmentationWorkload)
}
