package minato_test

import (
	"context"
	"fmt"
	"log"
	"sync"

	"github.com/minatoloader/minato"
)

// exampleDataset is a minimal minato.Dataset for the example.
type exampleDataset struct{ name string }

func (d exampleDataset) Name() string { return d.name }
func (d exampleDataset) Len() int     { return 128 }
func (d exampleDataset) Sample(epoch, i int) *minato.Sample {
	return &minato.Sample{
		Index: i, Epoch: epoch,
		Key:      minato.Key{Space: d.name, Index: int64(i)},
		RawBytes: 1 << 16, Bytes: 1 << 16,
	}
}

// ExampleNewCluster hosts two concurrent tenant sessions on one shared
// testbed: they share the page cache, sample pool, and CPU workers (fairly
// arbitrated, weighted by priority), while each streams its own batch
// budget deterministically.
func ExampleNewCluster() {
	cluster, err := minato.NewCluster(
		minato.WithEnv(minato.EnvConfig{Cores: 8}),
		minato.WithMaxSessions(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	reports := make([]*minato.Report, 2)
	for i := range reports {
		sess, err := cluster.Open(exampleDataset{name: fmt.Sprintf("tenant-%d", i)},
			minato.WithBatchSize(16),
			minato.WithIterations(4),
			minato.WithPriority(float64(i+1)),
		)
		if err != nil {
			log.Fatal(err)
		}
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, err := range sess.Batches(context.Background()) {
				if err != nil {
					log.Fatal(err)
				}
			}
			reports[i], _ = sess.Close()
		}()
	}
	wg.Wait()

	for i, rep := range reports {
		fmt.Printf("tenant-%d: %d batches, %d samples\n", i, rep.Batches, rep.Samples)
	}
	// Output:
	// tenant-0: 4 batches, 64 samples
	// tenant-1: 4 batches, 64 samples
}
