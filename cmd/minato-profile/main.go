// Command minato-profile profiles per-sample preprocessing cost for a
// workload — the offline analysis behind the paper's Fig 2 and Table 2 and
// the "educated guess" initializing MinatoLoader's timeout (§4.2).
//
//	minato-profile -workload img-seg -n 210
//	minato-profile -workload speech-3s -n 5000 -per-transform
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/minatoloader/minato"
	"github.com/minatoloader/minato/internal/stats"
)

func main() {
	var (
		wl     = flag.String("workload", "img-seg", "registered workload name")
		n      = flag.Int("n", 1000, "samples to profile")
		seed   = flag.Uint64("seed", 1, "random seed")
		perTr  = flag.Bool("per-transform", false, "break cost down by transform")
		cutoff = flag.Float64("percentile", 0.75, "report this percentile as the suggested timeout")
	)
	flag.Parse()

	w, ok := minato.WorkloadByName(*wl, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (registered: %s)\n", *wl, strings.Join(minato.Workloads(), ", "))
		os.Exit(2)
	}

	count := *n
	if count > w.Dataset.Len() {
		count = w.Dataset.Len()
	}

	totals := make([]float64, 0, count)
	perTransform := map[string]*stats.Welford{}
	order := []string{}
	for i := 0; i < count; i++ {
		s := w.Dataset.Sample(0, i)
		c := s.Clone()
		var total time.Duration
		for _, tr := range w.Pipeline.Transforms() {
			cost := tr.Cost(c)
			total += cost
			c.Bytes = int64(float64(c.Bytes) * tr.SizeFactor(c))
			if *perTr {
				wf, ok := perTransform[tr.Name()]
				if !ok {
					wf = &stats.Welford{}
					perTransform[tr.Name()] = wf
					order = append(order, tr.Name())
				}
				wf.Add(float64(cost) / float64(time.Millisecond))
			}
		}
		totals = append(totals, float64(total)/float64(time.Millisecond))
	}

	sum := stats.Summarize(totals)
	fmt.Printf("workload: %s (%d samples)\n", w.Name, count)
	fmt.Printf("total preprocessing time (ms): %s\n", sum)
	var p stats.Percentiles
	for _, v := range totals {
		p.Add(v)
	}
	fmt.Printf("suggested timeout (P%.0f): %.0f ms\n", *cutoff*100, p.Quantile(*cutoff))

	if *perTr {
		fmt.Println("\nper-transform cost (ms):")
		for _, name := range order {
			wf := perTransform[name]
			fmt.Printf("  %-22s avg=%8.2f  min=%8.2f  max=%8.2f\n",
				name, wf.Mean(), wf.Min(), wf.Max())
		}
	}
}
