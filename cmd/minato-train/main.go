// Command minato-train runs a single training session: one workload, one
// data loader, one testbed — and prints the session report. It is the
// quickest way to poke at the system:
//
//	minato-train -workload speech-3s -loader minato -gpus 4
//	minato-train -workload img-seg -loader pytorch -testbed B -epochs 10
//
// Workload and loader names resolve through the public registries, so
// backends registered via minato.RegisterLoader / minato.RegisterWorkload
// are immediately addressable here. Run with -list to enumerate them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/minatoloader/minato"
)

func main() {
	var (
		wl       = flag.String("workload", "speech-3s", "registered workload (see -list)")
		ld       = flag.String("loader", "minato", "registered loader (see -list)")
		testbed  = flag.String("testbed", "A", "A (4×A100) or B (8×V100)")
		gpus     = flag.Int("gpus", 0, "override GPU count")
		epochs   = flag.Int("epochs", 0, "override epoch budget")
		iters    = flag.Int("iterations", 0, "override iteration budget")
		seed     = flag.Uint64("seed", 1, "random seed")
		traceCSV = flag.String("trace-csv", "", "write per-sample trace CSV to this directory")
		traceOut = flag.String("trace", "", "write Chrome trace-event JSON (Perfetto-viewable) to this file")
		list     = flag.Bool("list", false, "list registered workloads and loaders, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(minato.Workloads(), " "))
		fmt.Println("loaders:  ", strings.Join(minato.Loaders(), " "))
		return
	}

	w, ok := minato.WorkloadByName(*wl, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (registered: %s)\n", *wl, strings.Join(minato.Workloads(), ", "))
		os.Exit(2)
	}

	cfg := minato.ConfigA()
	if *testbed == "B" || *testbed == "b" {
		cfg = minato.ConfigB()
	}

	opts := []minato.Option{
		minato.WithLoader(*ld),
		minato.WithHardware(cfg),
		minato.WithSeed(*seed),
		minato.WithParams(minato.Params{Collect: true, TraceSamples: *traceCSV != ""}),
	}
	var sink *minato.TraceSink
	if *traceOut != "" {
		sink = minato.NewTraceSink()
		opts = append(opts, minato.WithTracing(sink))
	}
	if *gpus > 0 {
		opts = append(opts, minato.WithGPUs(*gpus))
		cfg = cfg.WithGPUs(*gpus)
	}
	if *epochs > 0 {
		opts = append(opts, minato.WithEpochs(*epochs))
	}
	if *iters > 0 {
		opts = append(opts, minato.WithIterations(*iters))
	}

	start := time.Now()
	rep, err := minato.Train(*wl, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *traceCSV != "" {
		name := fmt.Sprintf("trace_%s_%s", rep.Workload, rep.Loader)
		if err := rep.WriteTraceCSV(*traceCSV, name); err != nil {
			fmt.Fprintln(os.Stderr, "trace-csv:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written:   %s/%s.csv (%d samples)\n", *traceCSV, name, len(rep.SampleTraces))
	}
	if sink != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := sink.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written:   %s (%d spans)\n", *traceOut, sink.Len())
	}
	fmt.Printf("workload:        %s (%s)\n", rep.Workload, w.Model)
	fmt.Printf("loader:          %s\n", rep.Loader)
	fmt.Printf("testbed:         %s, %d×%s\n", cfg.Name, cfg.GPUCount, cfg.GPUArch.Name)
	fmt.Printf("training time:   %.1f s (simulated)\n", rep.TrainTime.Seconds())
	fmt.Printf("batches/samples: %d / %d\n", rep.Batches, rep.Samples)
	fmt.Printf("throughput:      %.1f MB/s\n", rep.Throughput())
	fmt.Printf("GPU utilization: %.1f%%\n", rep.AvgGPUUtil)
	fmt.Printf("CPU utilization: %.1f%%\n", rep.AvgCPUUtil)
	fmt.Printf("disk read:       %.1f GB\n", float64(rep.DiskBytes)/1e9)
	fmt.Printf("wall time:       %s\n", time.Since(start).Round(time.Millisecond))
}
