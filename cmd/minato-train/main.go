// Command minato-train runs a single training session: one workload, one
// data loader, one testbed — and prints the session report. It is the
// quickest way to poke at the system:
//
//	minato-train -workload speech-3s -loader minato -gpus 4
//	minato-train -workload img-seg -loader pytorch -testbed B -epochs 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/minatoloader/minato/internal/hardware"
	"github.com/minatoloader/minato/internal/loaders"
	"github.com/minatoloader/minato/internal/trainer"
	"github.com/minatoloader/minato/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "speech-3s", "img-seg | obj-det | speech-3s | speech-10s")
		ld      = flag.String("loader", "minato", "pytorch | pecan | dali | minato")
		testbed = flag.String("testbed", "A", "A (4×A100) or B (8×V100)")
		gpus    = flag.Int("gpus", 0, "override GPU count")
		epochs  = flag.Int("epochs", 0, "override epoch budget")
		iters   = flag.Int("iterations", 0, "override iteration budget")
		seed    = flag.Uint64("seed", 1, "random seed")
		trace   = flag.String("trace", "", "write per-sample trace CSV to this directory")
	)
	flag.Parse()

	var w workload.Workload
	switch *wl {
	case "img-seg":
		w = workload.ImageSegmentation(*seed)
	case "obj-det":
		w = workload.ObjectDetection(*seed)
	case "speech-3s":
		w = workload.Speech(*seed, 3*time.Second)
	case "speech-10s":
		w = workload.Speech(*seed, 10*time.Second)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if *epochs > 0 {
		w = w.WithEpochs(*epochs)
	}
	if *iters > 0 {
		w = w.WithIterations(*iters)
	}

	cfg := hardware.ConfigA()
	if *testbed == "B" || *testbed == "b" {
		cfg = hardware.ConfigB()
	}
	if *gpus > 0 {
		cfg = cfg.WithGPUs(*gpus)
	}

	f, ok := loaders.ByName(*ld)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown loader %q\n", *ld)
		os.Exit(2)
	}

	start := time.Now()
	rep, err := trainer.Simulate(cfg, w, f, trainer.Params{Collect: true, TraceSamples: *trace != ""})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *trace != "" {
		name := fmt.Sprintf("trace_%s_%s", rep.Workload, rep.Loader)
		if err := rep.WriteTraceCSV(*trace, name); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written:   %s/%s.csv (%d samples)\n", *trace, name, len(rep.Trace))
	}
	fmt.Printf("workload:        %s (%s)\n", rep.Workload, w.Model)
	fmt.Printf("loader:          %s\n", rep.Loader)
	fmt.Printf("testbed:         %s, %d×%s\n", cfg.Name, cfg.GPUCount, cfg.GPUArch.Name)
	fmt.Printf("training time:   %.1f s (simulated)\n", rep.TrainTime.Seconds())
	fmt.Printf("batches/samples: %d / %d\n", rep.Batches, rep.Samples)
	fmt.Printf("throughput:      %.1f MB/s\n", rep.Throughput())
	fmt.Printf("GPU utilization: %.1f%%\n", rep.AvgGPUUtil)
	fmt.Printf("CPU utilization: %.1f%%\n", rep.AvgCPUUtil)
	fmt.Printf("disk read:       %.1f GB\n", float64(rep.DiskBytes)/1e9)
	fmt.Printf("wall time:       %s\n", time.Since(start).Round(time.Millisecond))
}
