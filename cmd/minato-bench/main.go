// Command minato-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	minato-bench -exp fig7              # one experiment
//	minato-bench -exp all               # everything (several minutes)
//	minato-bench -exp e1 -out results   # also write CSVs for plotting
//	minato-bench -list                  # list experiment IDs
//
// Experiment IDs follow the paper: table1..table3, fig1b..fig12, e1 (the
// artifact appendix run), and abl-* design ablations. See DESIGN.md for the
// full index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/minatoloader/minato/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID, comma list, or 'all'")
		out   = flag.String("out", "", "directory for CSV output (optional)")
		seed  = flag.Uint64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "shrink run lengths (CI mode)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.All() {
			fmt.Printf("  %-12s %s\n", r.ID, r.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, r := range experiments.All() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, OutDir: *out}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		r, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s completed in %s wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
