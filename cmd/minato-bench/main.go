// Command minato-bench regenerates the paper's tables and figures, and
// runs one-off loader × workload sessions through the public registry.
//
// Usage:
//
//	minato-bench -exp fig7              # one experiment
//	minato-bench -exp all               # everything (several minutes)
//	minato-bench -exp e1 -out results   # also write CSVs for plotting
//	minato-bench -list                  # list experiment IDs
//
//	minato-bench -loader minato -workload speech-3s        # one session
//	minato-bench -loader pytorch -workload img-seg -quick  # shortened
//	minato-bench -fleet                 # scale-out tier: 8/32/64 GPUs
//	minato-bench -tenants               # multi-tenant tier: 1/4/16 sessions
//	minato-bench -nodes                 # multi-node tier: 2/8-node clusters
//	minato-bench -warm                  # warm-start tier: materialized cache
//	minato-bench -chaos                 # fault-injection tier: chaos scenarios
//	minato-bench -serve                 # disaggregated tier: 1/16/256 remote clients
//
// Experiment IDs follow the paper: table1..table3, fig1b..fig12, e1 (the
// artifact appendix run), and abl-* design ablations. Loader and workload
// names resolve through the public registries (minato.RegisterLoader /
// minato.RegisterWorkload), so downstream backends benchmark without
// editing this command. See DESIGN.md for the full index.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato"
	"github.com/minatoloader/minato/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment ID, comma list, or 'all'")
		loader    = flag.String("loader", "", "run one session with this registered loader")
		workload  = flag.String("workload", "", "run one session with this registered workload")
		out       = flag.String("out", "", "directory for CSV output (optional)")
		seed      = flag.Uint64("seed", 1, "random seed")
		quick     = flag.Bool("quick", false, "shrink run lengths (CI mode)")
		fleet     = flag.Bool("fleet", false, "run the multi-GPU scale-out tier (8/32/64 simulated GPUs)")
		tenants   = flag.Bool("tenants", false, "run the multi-tenant cluster tier (1/4/16 concurrent sessions)")
		nodes     = flag.Bool("nodes", false, "run the multi-node tier (2/8-node clusters over the netsim fabric)")
		warm      = flag.Bool("warm", false, "run the warm-start tier (1/4/16 tenants over a shared materialized cache)")
		chaosTier = flag.Bool("chaos", false, "run the fault-injection tier (registered chaos scenarios on an 8-node cluster)")
		serve     = flag.Bool("serve", false, "run the disaggregated-service tier (1/16/256 remote clients on one preprocessing server)")
		traceOut  = flag.String("trace", "", "with -loader/-workload: write Chrome trace-event JSON to this file")
		list      = flag.Bool("list", false, "list experiment IDs and registered names, then exit")
	)
	flag.Parse()

	if *fleet {
		os.Exit(runFleet(*loader, *workload, *seed, *quick))
	}
	if *tenants {
		os.Exit(runTenants(*workload, *seed, *quick))
	}
	if *nodes {
		os.Exit(runNodes(*workload, *seed, *quick))
	}
	if *warm {
		os.Exit(runWarm(*workload, *seed, *quick))
	}
	if *chaosTier {
		os.Exit(runChaos(*workload, *seed, *quick))
	}
	if *serve {
		os.Exit(runServe(*workload, *seed, *quick))
	}

	if (*loader != "" || *workload != "") && !*list {
		if *exp != "" {
			fmt.Fprintln(os.Stderr, "-exp and -loader/-workload are mutually exclusive")
			os.Exit(2)
		}
		os.Exit(runSession(*loader, *workload, *seed, *quick, *traceOut))
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.All() {
			fmt.Printf("  %-12s %s\n", r.ID, r.Title)
		}
		fmt.Println("\nregistered workloads:", strings.Join(minato.Workloads(), " "))
		fmt.Println("registered loaders:  ", strings.Join(minato.Loaders(), " "))
		if *exp == "" {
			fmt.Println("\nrun with -exp <id>[,<id>...], -exp all, or -loader X -workload Y")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, r := range experiments.All() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, OutDir: *out}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		r, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s completed in %s wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runSession benchmarks a single loader × workload pair via the v2 API,
// resolving both names through the registry.
func runSession(loader, workload string, seed uint64, quick bool, traceOut string) int {
	if loader == "" {
		loader = "minato"
	}
	if workload == "" {
		workload = "speech-3s"
	}
	opts := []minato.Option{
		minato.WithLoader(loader),
		minato.WithSeed(seed),
		minato.WithParams(minato.Params{Collect: true}),
	}
	if quick {
		opts = append(opts, minato.WithIterations(100))
	}
	var sink *minato.TraceSink
	if traceOut != "" {
		sink = minato.NewTraceSink()
		opts = append(opts, minato.WithTracing(sink))
	}
	start := time.Now()
	rep, err := minato.Train(workload, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s × %s on %d GPUs: train %.1fs, %.1f MB/s, GPU %.1f%%, CPU %.1f%% (%s wall)\n",
		rep.Workload, rep.Loader, rep.GPUs, rep.TrainTime.Seconds(), rep.Throughput(),
		rep.AvgGPUUtil, rep.AvgCPUUtil, time.Since(start).Round(time.Millisecond))
	if sink != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := sink.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("trace: %s (%d spans)\n", traceOut, sink.Len())
	}
	return 0
}

// runTenants benchmarks the multi-tenant cluster tier: 1, 4, and 16
// concurrent training sessions of the given workload co-running on one
// shared ConfigA cluster — shared page cache (single-flight fills), shared
// sample pool, fairly-arbitrated CPU workers — reporting aggregate
// throughput and per-tenant cache attribution.
func runTenants(workload string, seed uint64, quick bool) int {
	if workload == "" {
		workload = "speech-3s"
	}
	iters := 100
	if quick {
		iters = 25
	}
	for _, n := range []int{1, 4, 16} {
		cl, err := minato.NewCluster(
			minato.WithHardware(minato.ConfigA()),
			minato.WithMaxSessions(n),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		start := time.Now()
		var wg sync.WaitGroup
		var samples, hits atomic.Int64
		failed := atomic.Bool{}
		for t := 0; t < n; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep, err := cl.Train(workload,
					minato.WithSeed(seed+uint64(t)),
					minato.WithIterations(iters),
					minato.WithGPUs(1),
				)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					failed.Store(true)
					return
				}
				samples.Add(rep.Samples)
				hits.Add(rep.CacheStats.Hits)
			}()
		}
		wg.Wait()
		if failed.Load() {
			cl.Close()
			return 1
		}
		wall := time.Since(start)
		fmt.Printf("tenants %2d × %s: %d samples in %s wall (%.0f samples/s aggregate), %d attributed cache hits\n",
			n, workload, samples.Load(), wall.Round(time.Millisecond),
			float64(samples.Load())/wall.Seconds(), hits.Load())
		if err := cl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// runWarm benchmarks the warm-start tier: 1, 4, and 16 tenants training the
// same workload on one cluster with the materialized preprocessed-sample
// cache enabled. Every tenant uses the same seed, so all sessions walk the
// same shard in the same order — the co-tenant warm-start scenario where
// single-flight fills materialize each entry exactly once and everyone else
// restores instead of preprocessing.
func runWarm(workload string, seed uint64, quick bool) int {
	if workload == "" {
		workload = "speech-3s"
	}
	iters := 100
	if quick {
		iters = 25
	}
	for _, n := range []int{1, 4, 16} {
		cl, err := minato.NewCluster(
			minato.WithHardware(minato.ConfigA()),
			minato.WithMaxSessions(n),
			minato.WithMaterializedCache(4<<30),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		start := time.Now()
		var wg sync.WaitGroup
		var samples atomic.Int64
		failed := atomic.Bool{}
		for t := 0; t < n; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Same seed for every tenant: the warm-start matrix wants
				// the tenants to share one key sequence, not stride apart.
				rep, err := cl.Train(workload,
					minato.WithSeed(seed),
					minato.WithIterations(iters),
					minato.WithGPUs(1),
				)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					failed.Store(true)
					return
				}
				samples.Add(rep.Samples)
			}()
		}
		wg.Wait()
		if failed.Load() {
			cl.Close()
			return 1
		}
		wall := time.Since(start)
		mc := cl.Stats().MatCache
		fmt.Printf("warm %2d tenants × %s: %d samples in %s wall (%.0f samples/s aggregate), mat cache %d hits / %d fills (%.1f%% hit rate), %.1fs preprocessing saved\n",
			n, workload, samples.Load(), wall.Round(time.Millisecond),
			float64(samples.Load())/wall.Seconds(),
			mc.Hits, mc.Fills, 100*mc.HitRate(), mc.Saved.Seconds())
		if err := cl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// runNodes benchmarks the multi-node tier: 2- and 8-node data-parallel
// clusters over the simulated interconnect, comparing the PyTorch-model
// loader against MinatoLoader on whole-cluster step time and network-stall
// share — the BenchmarkMultiNode view, interactive.
func runNodes(workload string, seed uint64, quick bool) int {
	if workload == "" {
		workload = "speech-3s"
	}
	// Per-node budget: every node runs its own loader over its shard, so
	// the per-rank work is constant across tiers.
	itersPerNode := 15
	if quick {
		itersPerNode = 5
	}
	for _, n := range []int{2, 8} {
		for _, loader := range []string{"pytorch", "minato"} {
			start := time.Now()
			rep, err := minato.TrainMultiNode(workload,
				minato.WithNodes(n),
				minato.WithLoader(loader),
				minato.WithSeed(seed),
				minato.WithGPUs(1),
				minato.WithIterations(itersPerNode),
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			wall := time.Since(start)
			fmt.Printf("nodes %d × %-7s: %d steps, %.0f ms/step cluster, GPU %.1f%%, stalls data %.1f%% / barrier %.1f%% / net %.1f%% (%s wall)\n",
				n, rep.Loader, rep.Steps, rep.StepTime().Seconds()*1000, rep.AvgGPUUtil,
				100*rep.DataStallShare(), 100*rep.BarrierStallShare(), 100*rep.NetworkStallShare(),
				wall.Round(time.Millisecond))
		}
	}
	return 0
}

// runChaos benchmarks the fault-injection tier: every registered chaos
// scenario that is valid on an 8-node cluster (plus a no-chaos baseline),
// reporting the SLO view — tail step time and measured recovery — that
// BenchmarkChurn tracks in CI.
func runChaos(workload string, seed uint64, quick bool) int {
	if workload == "" {
		workload = "speech-3s"
	}
	const nodes = 8
	itersPerNode := 15
	if quick {
		itersPerNode = 5
	}
	run := func(name string, opts ...minato.Option) int {
		start := time.Now()
		opts = append([]minato.Option{
			minato.WithNodes(nodes),
			minato.WithSeed(seed),
			minato.WithGPUs(1),
			minato.WithIterations(itersPerNode),
		}, opts...)
		rep, err := minato.TrainMultiNode(workload, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("chaos %-14s: %d steps, p99 %.0f ms/step, recovery %.0f ms, GPU %.1f%% (%s wall)\n",
			name, rep.Steps, rep.StepP99.Seconds()*1000, rep.RecoveryTime().Seconds()*1000,
			rep.AvgGPUUtil, time.Since(start).Round(time.Millisecond))
		return 0
	}
	if rc := run("baseline"); rc != 0 {
		return rc
	}
	for _, name := range minato.ChaosScenarios() {
		script, _ := minato.ChaosScenarioByName(name)
		if script.Validate(nodes) != nil {
			continue // single-machine-only scenario (preemption etc.)
		}
		if rc := run(name, minato.WithChaosScenario(name)); rc != 0 {
			return rc
		}
	}
	return 0
}

// runFleet benchmarks the scale-out tier: one session per fleet size, each
// GPU consuming a fixed batch budget, reporting simulator wall throughput —
// the contention-scalability view that BenchmarkFleetSession tracks in CI.
func runFleet(loader, workload string, seed uint64, quick bool) int {
	if loader == "" {
		loader = "minato"
	}
	if workload == "" {
		workload = "speech-3s"
	}
	batchesPerGPU := 25
	if quick {
		batchesPerGPU = 10
	}
	for _, gpus := range []int{8, 32, 64} {
		start := time.Now()
		rep, err := minato.Train(workload,
			minato.WithLoader(loader),
			minato.WithSeed(seed),
			minato.WithGPUs(gpus),
			minato.WithIterations(batchesPerGPU*gpus),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		wall := time.Since(start)
		fmt.Printf("fleet %2d GPUs × %s: %d samples in %s wall (%.0f samples/s), train %.1fs, GPU %.1f%%\n",
			gpus, rep.Loader, rep.Samples, wall.Round(time.Millisecond),
			float64(rep.Samples)/wall.Seconds(), rep.TrainTime.Seconds(), rep.AvgGPUUtil)
	}
	return 0
}

// runServe benchmarks the disaggregated-service tier: one preprocessing
// server (an 8-core cluster) publishes a registered workload's dataset and
// pipeline on a netsim fabric, and 1, 16, and 256 remote clients stream a
// fixed batch budget through Dial concurrently on one kernel — the
// BenchmarkServe view, interactive. Reported per tier: aggregate samples
// per wall second, the worst client's p99 batch wait in virtual time, and
// the server's stream/rejection counters.
func runServe(workloadName string, seed uint64, quick bool) int {
	if workloadName == "" {
		workloadName = "speech-3s"
	}
	iters := 32
	tiers := []int{1, 16, 256}
	if quick {
		iters = 8
		tiers = []int{1, 16}
	}
	for _, n := range tiers {
		w, ok := minato.WorkloadByName(workloadName, seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", workloadName)
			return 2
		}
		sn := minato.NewServiceNet(nil, minato.ServiceNetConfig{Endpoints: n + 8})
		cl, err := minato.NewCluster(
			minato.WithRuntime(sn.Runtime()),
			minato.WithEnv(minato.EnvConfig{Cores: 8, GPUs: 1}),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		addr, err := minato.Serve(cl, minato.WithServiceNet(sn),
			minato.Publish(workloadName, w.Dataset, w.Pipeline))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		start := time.Now()
		sessions := make([]*minato.RemoteSession, n)
		for c := range sessions {
			rs, err := minato.Dial(addr,
				minato.WithBatchSize(w.BatchSize),
				minato.WithIterations(iters),
				minato.WithSeed(seed+uint64(c)),
				minato.WithPrefetch(4),
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			sessions[c] = rs
		}
		failed := atomic.Bool{}
		minato.StreamAll(context.Background(), sessions, func(_ int, s *minato.RemoteSession) {
			var last *minato.Batch
			for b, err := range s.Batches(context.Background()) {
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					failed.Store(true)
					return
				}
				last = b
			}
			if last != nil {
				last.Release()
			}
		})
		var samples int64
		var worstP99 time.Duration
		for _, s := range sessions {
			if p := s.Stats().WaitP99; p > worstP99 {
				worstP99 = p
			}
			rep, err := s.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed.Store(true)
				continue
			}
			samples += rep.Samples
		}
		wall := time.Since(start)
		ss := addr.Stats()
		if err := addr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := cl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if failed.Load() {
			return 1
		}
		fmt.Printf("serve %3d clients × %s: %d samples in %s wall (%.0f samples/s aggregate), worst p99 batch wait %.1fms virtual, %d streams, %d batches sent\n",
			n, workloadName, samples, wall.Round(time.Millisecond),
			float64(samples)/wall.Seconds(), float64(worstP99)/float64(time.Millisecond),
			ss.StreamsTotal, ss.BatchesSent)
	}
	return 0
}
