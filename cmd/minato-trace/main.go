// Command minato-trace runs one training scenario with end-to-end tracing
// enabled and renders what the trace says: a Chrome trace-event JSON file
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing, a per-batch
// critical-path "journey" table attributing each delivered batch's latency
// (data wait, copy, GPU step, barrier, network, downtime), and a
// Prometheus text-format snapshot of the run's collected metrics.
//
//	minato-trace -workload speech-3s -loader minato -out trace.json
//	minato-trace -workload speech-3s -nodes 4 -chaos <scenario> -out trace.json
//	minato-trace -workload img-seg -prom metrics.prom -top 20
//
// The run is deterministic: identical flags produce a bit-identical
// trace.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/minatoloader/minato"
)

func main() {
	var (
		wl      = flag.String("workload", "speech-3s", "registered workload")
		ld      = flag.String("loader", "minato", "registered loader")
		testbed = flag.String("testbed", "A", "A (4×A100) or B (8×V100)")
		nodes   = flag.Int("nodes", 0, "run multi-node with this many nodes (0 = single machine)")
		gpus    = flag.Int("gpus", 0, "override GPU count")
		iters   = flag.Int("iterations", 0, "override iteration budget")
		epochs  = flag.Int("epochs", 0, "override epoch budget")
		seed    = flag.Uint64("seed", 1, "random seed")
		chaosN  = flag.String("chaos", "", "registered chaos scenario to replay")
		out     = flag.String("out", "trace.json", "Chrome trace-event JSON output file")
		prom    = flag.String("prom", "", "write Prometheus text-format metrics snapshot to this file")
		top     = flag.Int("top", 10, "journey-table rows (slowest batches first; 0 disables)")
	)
	flag.Parse()

	sink := minato.NewTraceSink()
	opts := []minato.Option{
		minato.WithLoader(*ld),
		minato.WithSeed(*seed),
		minato.WithTracing(sink),
		minato.WithParams(minato.Params{Collect: true}),
	}
	cfg := minato.ConfigA()
	if *testbed == "B" || *testbed == "b" {
		cfg = minato.ConfigB()
	}
	if *gpus > 0 {
		opts = append(opts, minato.WithGPUs(*gpus))
	}
	if *iters > 0 {
		opts = append(opts, minato.WithIterations(*iters))
	}
	if *epochs > 0 {
		opts = append(opts, minato.WithEpochs(*epochs))
	}
	if *chaosN != "" {
		opts = append(opts, minato.WithChaosScenario(*chaosN))
	}

	start := time.Now()
	var trainTime time.Duration
	var stalls string
	if *nodes > 0 {
		opts = append(opts, minato.WithNodes(*nodes), minato.WithHardware(cfg))
		rep, err := minato.TrainMultiNode(*wl, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trainTime = rep.TrainTime
		stalls = fmt.Sprintf("data %.1fs, barrier %.1fs, network %.1fs",
			rep.DataStall.Seconds(), rep.BarrierStall.Seconds(), rep.NetworkStall.Seconds())
	} else {
		opts = append(opts, minato.WithHardware(cfg))
		rep, err := minato.Train(*wl, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trainTime = rep.TrainTime
		stalls = fmt.Sprintf("data %.1fs", rep.DataStall.Seconds())
		if *prom != "" {
			f, err := os.Create(*prom)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := rep.WritePrometheus(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("metrics: %s\n", *prom)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sink.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace:   %s (%d spans)\n", *out, sink.Len())
	}

	fmt.Printf("run:     %s × %s, train %.1fs simulated (%s wall)\n",
		*wl, *ld, trainTime.Seconds(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("stalls:  %s\n", stalls)

	paths := sink.CriticalPath()
	attr := sink.Attribute(nil)
	fmt.Printf("batches: %d traced; latency %.1fs = gpu %.1fs + data %.1fs + copy %.1fs + barrier %.1fs + net %.1fs + down %.1fs + other %.1fs\n",
		attr.Batches, attr.Latency.Seconds(), attr.GPUStep.Seconds(), attr.DataWait.Seconds(),
		attr.Copy.Seconds(), attr.BarrierWait.Seconds(), attr.NetworkWait.Seconds(),
		attr.Downtime.Seconds(), attr.Other.Seconds())

	if *top > 0 && len(paths) > 0 {
		sort.SliceStable(paths, func(i, j int) bool { return paths[i].Latency() > paths[j].Latency() })
		n := *top
		if n > len(paths) {
			n = len(paths)
		}
		fmt.Printf("\nslowest %d batch journeys:\n", n)
		fmt.Printf("  %-6s %-4s %-4s %-6s %10s %10s %10s %10s %10s %10s\n",
			"seq", "node", "gpu", "tenant", "latency", "data", "copy", "gpu-step", "barrier", "net")
		for _, p := range paths[:n] {
			fmt.Printf("  %-6d %-4d %-4d %-6d %10s %10s %10s %10s %10s %10s\n",
				p.Seq, p.Node, p.GPU, p.Tenant,
				ms(p.Latency()), ms(p.DataWait), ms(p.Copy), ms(p.GPUStep), ms(p.BarrierWait), ms(p.NetworkWait))
		}
	}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
