package minato

import (
	"fmt"
	"sync"
	"time"
)

// Checkpoint is a restartable snapshot of a session's progress: how many
// batches it has delivered (and therefore the exact epoch, step, and shuffle
// position), plus everything needed to rebuild the stream — dataset,
// pipeline, loader, budget, seed. The snapshot pins the cluster it was taken
// on, so the page cache and the materialized preprocessed-sample cache stay
// warm across the restore; a resumed session picks up against caches its
// predecessor already filled.
//
//	sess, _ := minato.Open(ds, minato.WithChaos(minato.PreemptFor(2*time.Second, 0)))
//	for b, err := range sess.Batches(ctx) {
//	    if errors.Is(err, minato.ErrPreempted) { break }
//	    ...
//	}
//	ck, _ := sess.Checkpoint()
//	sess.Close()
//	resumed, _ := minato.Resume(ck)       // continues at the exact next batch
//	for b, err := range resumed.Batches(ctx) { ... }
//	rep, _ := resumed.Close()             // rep.RecoveryTime() > 0
//
// A checkpoint is single-use: Resume consumes it, and Close discards an
// unconsumed one (releasing the cluster if the checkpoint owns it). Because
// the index stream is a pure function of (seed, epoch), the restore is
// exact — the resumed session delivers precisely the draws the original
// never did, in the original shuffle order, and the two sessions' batch
// counts always sum to the original budget.
type Checkpoint struct {
	mu       sync.Mutex
	consumed bool

	cl   *Cluster
	owns bool

	dataset Dataset
	factory Factory
	// spec is the original session spec with Skip advanced to the absolute
	// number of batches delivered so far — the whole restore state.
	spec    Spec
	retain  bool
	weight  float64
	gpus    int
	takenAt time.Duration
}

// Checkpoint snapshots the session's restartable progress. Take it after the
// Batches stream has ended — a terminal preemption (ErrPreempted), a break,
// or natural completion — and before Close. Taking a checkpoint transfers
// ownership of an implicit (standalone-Open) cluster from the session to the
// checkpoint, so Close tears down the session's tenancy but leaves the warm
// caches alive for Resume.
func (s *Session) Checkpoint() (*Checkpoint, error) {
	if s.cl.isClosed() {
		return nil, ErrClusterClosed
	}
	ck := &Checkpoint{
		cl:      s.cl,
		owns:    s.ownsCluster,
		dataset: s.spec.Dataset,
		factory: s.factory,
		spec:    s.spec,
		retain:  s.retain,
		weight:  s.weight,
		gpus:    len(s.gpuIdxs),
		takenAt: s.rt.Now(),
	}
	ck.spec.Skip = s.spec.Skip + int(s.batches.Load())
	// The checkpoint now keeps the substrate alive, not the session.
	s.ownsCluster = false
	return ck, nil
}

// TakenAt returns the virtual time the checkpoint was taken.
func (ck *Checkpoint) TakenAt() time.Duration { return ck.takenAt }

// Batches returns the absolute number of batches delivered up to the
// checkpoint, counted from the very first session (resumes compound).
func (ck *Checkpoint) Batches() int { return ck.spec.Skip }

// Epoch returns the epoch the next delivered batch belongs to.
func (ck *Checkpoint) Epoch() int { return ck.spec.Skip / ck.spec.BatchesPerEpoch() }

// Step returns the next batch's step index within its epoch.
func (ck *Checkpoint) Step() int { return ck.spec.Skip % ck.spec.BatchesPerEpoch() }

// Remaining returns how many batches of the original budget are still
// undelivered — what a resumed session will stream.
func (ck *Checkpoint) Remaining() int { return ck.spec.TotalBatches() }

// Cache snapshots the pinned cluster's page cache — the warm state a
// resumed session inherits.
func (ck *Checkpoint) Cache() CacheStats {
	if ck.cl.cache == nil {
		return CacheStats{}
	}
	return ck.cl.cache.Stats()
}

// MatCache snapshots the pinned cluster's materialized preprocessed-sample
// cache (zero when WithMaterializedCache is not enabled).
func (ck *Checkpoint) MatCache() MatCacheStats {
	if ck.cl.mat == nil {
		return MatCacheStats{}
	}
	return ck.cl.mat.Stats()
}

// Close discards an unconsumed checkpoint, closing the cluster it owns (the
// implicit cluster of a standalone Open). Idempotent; a no-op after Resume,
// which takes the ownership over.
func (ck *Checkpoint) Close() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.consumed {
		return nil
	}
	ck.consumed = true
	if ck.owns {
		return ck.cl.Close()
	}
	return nil
}

// Resume restores a checkpointed session on the checkpoint's still-warm
// cluster: the new session fast-forwards the index stream to the exact next
// batch — same epoch numbering, same shuffle order — and delivers the
// remaining budget. Its Report records the restore as a resume fault window,
// so RecoveryTime() measures checkpoint recovery the same way it measures
// in-run fault recovery.
//
// The stream identity is pinned by the checkpoint: options that would change
// what is delivered (WithPipeline, WithBatchSize, WithLoader,
// WithLoaderFactory, WithLoaderConfig, WithIterations, WithEpochs, WithSeed)
// are *ConfigError here. Tenancy and observation options (WithPriority,
// WithGPUs, WithRetainBatches, WithChaos, WithChaosScenario) may differ from
// the original session. Resume consumes the checkpoint; a second Resume is a
// *ConfigError.
func Resume(ck *Checkpoint, opts ...Option) (*Session, error) {
	if ck == nil {
		return nil, configErr("Resume", "nil checkpoint")
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.consumed {
		return nil, configErr("Resume", "checkpoint already consumed")
	}
	o := buildOptions(opts)
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := o.rejectClusterOwned(); err != nil {
		return nil, err
	}
	switch {
	case o.pipeline != nil:
		return nil, configErr("WithPipeline", "pinned by the checkpoint")
	case o.batchSize != 0:
		return nil, configErr("WithBatchSize", "pinned by the checkpoint")
	case o.loaderName != "" || o.factory != nil || o.loaderCfg != nil:
		return nil, configErr("WithLoader", "pinned by the checkpoint")
	case o.iterations != 0 || o.epochs != 0:
		return nil, configErr("WithIterations/WithEpochs", "the budget is pinned by the checkpoint")
	case o.seedSet:
		return nil, configErr("WithSeed", "pinned by the checkpoint")
	}
	if ck.spec.TotalBatches() <= 0 {
		return nil, configErr("Resume",
			fmt.Sprintf("checkpoint has no remaining budget (all %d batches delivered)", ck.spec.Skip))
	}

	// Overlay the snapshot: the resumed stream is the original stream minus
	// its delivered prefix.
	o.skip = ck.spec.Skip
	o.pipeline = ck.spec.Pipeline
	o.batchSize = ck.spec.BatchSize
	o.epochs = ck.spec.Epochs
	o.iterations = ck.spec.Iterations
	o.seed = ck.spec.Seed
	fac := ck.factory
	o.factory = &fac
	o.retain = ck.retain || o.retain
	if !o.prioritySet {
		o.weight = ck.weight
	}
	if o.gpus == 0 {
		o.gpus = ck.gpus
	}

	sess, err := ck.cl.open(ck.dataset, o, ck.owns)
	if err != nil {
		return nil, err
	}
	sess.resumedAt = sess.rt.Now()
	ck.consumed = true
	return sess, nil
}
