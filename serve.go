package minato

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minatoloader/minato/internal/chaos"
	"github.com/minatoloader/minato/internal/service"
	"github.com/minatoloader/minato/internal/simtime"
	"github.com/minatoloader/minato/internal/trace"
)

// Disaggregated preprocessing. Serve turns a Cluster into a preprocessing
// server: its CPU workers, caches, and admission machinery feed batches
// over a simulated network to remote training clients instead of local
// GPUs. Dial connects a client to a served stream and returns a
// RemoteSession whose Batches iterator looks exactly like a local
// Session's — same iter.Seq2 shape, same recycling contract — except the
// batches crossed a netsim fabric with real (virtual-time) transfer and
// queueing delays. One preprocessing fleet can feed many training
// clusters; clients hedge slow servers against replicas, retry overloaded
// ones with backoff, and are backpressured by bounded per-stream send
// windows. Everything runs on the virtual clock, so a served topology is
// as deterministic as a local run.
//
//	net := minato.NewServiceNet(nil, minato.ServiceNetConfig{})
//	cl, _ := minato.NewCluster(minato.WithRuntime(net.Runtime()))
//	addr, _ := minato.Serve(cl, minato.WithServiceNet(net),
//	    minato.Publish("train", dataset, pipeline))
//	rs, _ := minato.Dial(addr, minato.WithIterations(100))
//	for b, err := range rs.Batches(ctx) { ... }

// ServiceNetConfig sizes a service fabric. Zero values take the service
// defaults (64 endpoints, 25 GB/s per NIC, 200µs latency).
type ServiceNetConfig struct {
	// Endpoints bounds how many parties (servers + clients) attach.
	Endpoints int
	// Bandwidth is each NIC's full-duplex bandwidth in bytes/s.
	Bandwidth float64
	// Latency is the fixed per-frame propagation delay.
	Latency time.Duration
}

// ServiceNet is the shared fabric a preprocessing fleet and its clients
// communicate over. Build one per topology and hand it to every Serve
// (WithServiceNet) whose cluster shares the runtime; Dial reaches servers
// through the address, so clients never touch the net directly.
type ServiceNet struct {
	rt  Runtime
	net *service.Net
}

// NewServiceNet builds a service fabric on rt; a nil rt gets a fresh
// deterministic virtual runtime (share it with NewCluster via
// WithRuntime(net.Runtime())).
func NewServiceNet(rt Runtime, cfg ServiceNetConfig) *ServiceNet {
	if rt == nil {
		rt = simtime.NewVirtual()
	}
	return &ServiceNet{
		rt: rt,
		net: service.NewNet(rt, service.Config{
			Endpoints: cfg.Endpoints,
			Bandwidth: cfg.Bandwidth,
			Latency:   cfg.Latency,
		}),
	}
}

// Runtime returns the clock the fabric runs on.
func (n *ServiceNet) Runtime() Runtime { return n.rt }

// ServiceNetStats is the fabric's deterministic traffic totals.
type ServiceNetStats struct {
	BytesMoved     int64
	FlowsCompleted int64
}

// Stats snapshots the fabric's traffic counters.
func (n *ServiceNet) Stats() ServiceNetStats {
	return ServiceNetStats{
		BytesMoved:     n.net.BytesMoved(),
		FlowsCompleted: n.net.FlowsCompleted(),
	}
}

// TokenQuota is one auth token's entitlement on a served cluster: a cap
// on concurrent streams and the fair-share weight its streams carry into
// the cluster's worker arbitration.
type TokenQuota = service.TokenQuota

// ServeStats is a server's multi-tenant front-end counters: streams
// admitted and active, typed rejections, batches/bytes sent, the
// send-window high-water, and hedge bookkeeping (cancels honored,
// fast-forwards).
type ServeStats = service.Stats

// RemoteStats is a remote session's client-side counters: delivered
// batches, batch-wait and inter-delivery quantiles, hedges fired,
// duplicates released, overloaded-open retries, and the outstanding-REQ
// high-water.
type RemoteStats = service.ClientStats

// published is one name → (dataset, pipeline) binding a server offers.
type published struct {
	dataset  Dataset
	pipeline *Pipeline
}

// serveOptions accumulates the functional options of Serve.
type serveOptions struct {
	net        *ServiceNet
	tokens     map[string]TokenQuota
	sendWindow int
	maxStreams int
	published  map[string]published
	chaos      *ChaosScript
	chaosName  string
	trace      *trace.Recorder
}

// ServeOption configures a preprocessing server (Serve).
type ServeOption interface{ applyServe(*serveOptions) }

type serveOption func(*serveOptions)

func (f serveOption) applyServe(o *serveOptions) { f(o) }

// WithServiceNet attaches the server to an existing fabric so several
// servers (and their clients) share one network. The fabric must run on
// the cluster's runtime. Default: a fresh fabric on the cluster's runtime.
func WithServiceNet(n *ServiceNet) ServeOption {
	return serveOption(func(o *serveOptions) { o.net = n })
}

// WithToken adds an auth token to the server's admission table. A server
// with at least one token rejects unknown tokens with ErrUnauthorized and
// enforces each token's quota with ErrQuotaExceeded; a server with no
// tokens accepts everyone at weight 1.
func WithToken(token string, q TokenQuota) ServeOption {
	return serveOption(func(o *serveOptions) {
		if o.tokens == nil {
			o.tokens = make(map[string]TokenQuota)
		}
		o.tokens[token] = q
	})
}

// WithSendWindow bounds batches granted-but-undelivered per stream (the
// server-side backpressure window). A client REQ beyond it is a protocol
// violation and kills the stream. Default 8.
func WithSendWindow(n int) ServeOption {
	return serveOption(func(o *serveOptions) { o.sendWindow = n })
}

// WithServerMaxStreams caps concurrent streams server-wide; OPENs beyond
// it are rejected with ErrServerOverloaded and clients retry with
// backoff. 0 = unlimited (the backing cluster's WithMaxSessions still
// applies).
func WithServerMaxStreams(n int) ServeOption {
	return serveOption(func(o *serveOptions) { o.maxStreams = n })
}

// Publish offers dataset × pipeline under name: clients select it with
// WithStream(name). A nil pipeline serves samples unchanged. At least one
// Publish is required; each Dial-opened stream runs as its own session of
// the backing cluster (own seed and budget, shared caches and workers).
func Publish(name string, dataset Dataset, pipeline *Pipeline) ServeOption {
	return serveOption(func(o *serveOptions) {
		if o.published == nil {
			o.published = make(map[string]published)
		}
		o.published[name] = published{dataset: dataset, pipeline: pipeline}
	})
}

// resolveChaos validates the serve-shape chaos options: link events
// (targeting fleet indices of servers registered so far) drive NIC
// degradation through an engine; disk events pre-install slowdown steps on
// the cluster's disk. Training-run kinds (crash, preempt, worker stall)
// are rejected — they script consumers, and a server has none.
func (o *serveOptions) resolveChaos(fleet int) (link, disk []ChaosEvent, err error) {
	if o.chaos != nil && o.chaosName != "" {
		return nil, nil, configErr("WithChaos/WithChaosScenario", "mutually exclusive")
	}
	var s ChaosScript
	opt := "WithChaos"
	switch {
	case o.chaos != nil:
		s = *o.chaos
	case o.chaosName != "":
		opt = "WithChaosScenario"
		var ok bool
		s, ok = chaos.ByName(o.chaosName)
		if !ok {
			return nil, nil, configErr(opt, fmt.Sprintf("unknown scenario %q", o.chaosName))
		}
	default:
		return nil, nil, nil
	}
	for _, ev := range s.Sorted() {
		switch ev.Kind {
		case ChaosLinkDegrade, ChaosLinkRestore:
			if ev.Node < 0 || ev.Node >= fleet {
				return nil, nil, configErr(opt, fmt.Sprintf(
					"link event targets fleet index %d, but the fleet has %d server(s)", ev.Node, fleet))
			}
			if ev.Kind == ChaosLinkDegrade && ev.Factor < 1 {
				return nil, nil, configErr(opt, fmt.Sprintf("link degrade factor %g < 1", ev.Factor))
			}
			link = append(link, ev)
		case ChaosDiskDegrade, ChaosDiskRestore:
			if ev.Kind == ChaosDiskDegrade && ev.Factor < 1 {
				return nil, nil, configErr(opt, fmt.Sprintf("disk degrade factor %g < 1", ev.Factor))
			}
			disk = append(disk, ev)
		default:
			return nil, nil, configErr(opt, fmt.Sprintf(
				"%v events apply to training runs, not preprocessing servers", ev.Kind))
		}
	}
	return link, disk, nil
}

// ServerAddr is a running preprocessing server's address: what Dial
// connects to, and the handle for its stats and shutdown.
type ServerAddr struct {
	sn    *ServiceNet
	rt    Runtime
	cl    *Cluster
	srv   *service.Server
	ep    int
	fleet int
	pub   map[string]published
	wg    *simtime.WaitGroup

	// link chaos starts lazily at the first admitted stream (shifted to
	// that instant), so the script measures from when traffic exists —
	// an engine parked on timers at Serve time would otherwise drag the
	// idle kernel's clock through the whole script before the first Dial.
	linkEvents []ChaosEvent
	tr         *trace.Recorder
	engOnce    sync.Once
	engMu      sync.Mutex
	eng        *chaos.Engine

	closed atomic.Bool
}

// startLinkChaos launches the link-fault replay, anchored at the current
// virtual instant. Runs on a stream pump task at the first batch pulled
// from any of the server's streams, so the anchor is deterministic.
func (a *ServerAddr) startLinkChaos() {
	a.engOnce.Do(func() {
		now := a.rt.Now()
		events := make([]ChaosEvent, len(a.linkEvents))
		for i, ev := range a.linkEvents {
			ev.At += now
			events[i] = ev
		}
		base := a.sn.net.Bandwidth()
		eng := chaos.StartEngine(a.rt, a.wg, events, func(ev ChaosEvent) {
			target := a.sn.net.ServerEndpoint(ev.Node)
			switch ev.Kind {
			case ChaosLinkDegrade:
				a.sn.net.SetBandwidth(target, base/ev.Factor)
			case ChaosLinkRestore:
				a.sn.net.SetBandwidth(target, base)
			}
			a.tr.Instant(trace.Span{Stage: trace.StageFault,
				Node: int32(ev.Node), Key: int64(ev.Kind)}, a.rt.Now())
		})
		a.engMu.Lock()
		if a.closed.Load() {
			eng.Stop()
		} else {
			a.eng = eng
		}
		a.engMu.Unlock()
	})
}

// Serve starts a disaggregated preprocessing server on the cluster: its
// workers, caches, and fair-share governor become a multi-tenant backend
// for remote training clients. The cluster must use AdmitReject admission
// (a queued open would block the server's dispatch loop; overload is
// instead surfaced as a typed ErrServerOverloaded rejection that clients
// retry with backoff) and must share the fabric's runtime. At least one
// Publish is required.
//
// Chaos: WithChaos/WithChaosScenario here take the serve shape — link
// events degrade a fleet member's NIC by index (the fleet is every server
// registered on the fabric so far, in Serve order), disk events brown out
// the cluster's storage. Consumer-side kinds are rejected.
func Serve(cl *Cluster, opts ...ServeOption) (*ServerAddr, error) {
	if cl == nil {
		return nil, configErr("Serve", "requires a cluster")
	}
	if cl.isClosed() {
		return nil, ErrClusterClosed
	}
	o := &serveOptions{}
	for _, opt := range opts {
		opt.applyServe(o)
	}
	if len(o.published) == 0 {
		return nil, configErr("Publish", "a server must publish at least one stream")
	}
	for name, pub := range o.published {
		if pub.dataset == nil {
			return nil, configErr("Publish", fmt.Sprintf("stream %q has a nil dataset", name))
		}
	}
	if o.sendWindow < 0 {
		return nil, configErr("WithSendWindow", fmt.Sprintf("window %d < 0", o.sendWindow))
	}
	if o.maxStreams < 0 {
		return nil, configErr("WithServerMaxStreams", fmt.Sprintf("cap %d < 0", o.maxStreams))
	}
	if cl.admission == AdmitQueue {
		return nil, configErr("Serve",
			"AdmitQueue clusters block saturated opens, which would stall the server's dispatch loop; use AdmitReject (overload becomes a typed rejection clients retry)")
	}
	sn := o.net
	if sn == nil {
		sn = NewServiceNet(cl.rt, ServiceNetConfig{})
	} else if sn.rt != cl.rt {
		return nil, configErr("WithServiceNet", "the fabric and the cluster must share a runtime")
	}
	ep, err := sn.net.AllocEndpoint()
	if err != nil {
		return nil, err
	}
	fleet := sn.net.RegisterServer(ep)
	link, disk, err := o.resolveChaos(sn.net.ServerCount())
	if err != nil {
		return nil, err
	}
	for _, ev := range disk {
		f := ev.Factor
		if ev.Kind == ChaosDiskRestore {
			f = 1
		}
		cl.disk.ScheduleSlowdown(ev.At, f)
	}
	if o.trace != nil {
		sn.net.EnableTrace(o.trace)
	}
	addr := &ServerAddr{
		sn:         sn,
		rt:         cl.rt,
		cl:         cl,
		ep:         ep,
		fleet:      fleet,
		pub:        o.published,
		wg:         simtime.NewWaitGroup(cl.rt),
		linkEvents: link,
		tr:         o.trace,
	}
	opener := &clusterOpener{cl: cl, pub: o.published}
	if len(link) > 0 {
		opener.onFirstPull = addr.startLinkChaos
	}
	addr.srv = service.NewServer(sn.net, ep, service.ServerConfig{
		Tokens:     o.tokens,
		SendWindow: o.sendWindow,
		MaxStreams: o.maxStreams,
	}, opener)
	addr.srv.Start()
	return addr, nil
}

// Net returns the fabric the server is attached to.
func (a *ServerAddr) Net() *ServiceNet { return a.sn }

// Fleet returns the server's fleet index on its fabric — what link-chaos
// events and replica selection refer to.
func (a *ServerAddr) Fleet() int { return a.fleet }

// Streams lists the published stream names, sorted.
func (a *ServerAddr) Streams() []string {
	names := make([]string, 0, len(a.pub))
	for n := range a.pub {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats snapshots the server's front-end counters; safe from any
// goroutine.
func (a *ServerAddr) Stats() ServeStats { return a.srv.Stats() }

// Close shuts the server down: the chaos engine stops, in-flight streams
// are torn down (their cluster sessions closed), and late frames are
// drained silently. The backing cluster stays open — closing it is the
// caller's job. Idempotent.
func (a *ServerAddr) Close() error {
	if !a.closed.CompareAndSwap(false, true) {
		return nil
	}
	a.engMu.Lock()
	eng := a.eng
	a.engMu.Unlock()
	eng.Stop()
	_ = a.wg.Wait(context.Background())
	a.srv.Close()
	return nil
}

// clusterOpener adapts a Cluster to the service.Opener seam: each
// accepted OPEN becomes one session of the backing cluster, so served
// streams get the same admission, fair-share arbitration, and shared
// caches as local sessions — a remote client's warm hits come from
// batches its neighbors already preprocessed.
type clusterOpener struct {
	cl  *Cluster
	pub map[string]published
	// onFirstPull fires once, at the first batch pulled from any stream —
	// the anchor for the server's lazily started link-chaos replay. The
	// anchor is the pull, not the open: between a Dial and its Batches the
	// kernel is idle, and an engine armed early would be the only timer
	// holder, dragging the clock through the whole script before traffic
	// exists.
	onFirstPull func()
}

func (co *clusterOpener) OpenStream(spec service.StreamSpec, weight float64) (service.Stream, error) {
	pub, ok := co.pub[spec.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q not published", service.ErrUnknownStream, spec.Name)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	if weight <= 0 {
		weight = 1
	}
	o := &sessionOptions{
		pipeline:   pub.pipeline,
		batchSize:  spec.BatchSize,
		iterations: spec.Iterations,
		epochs:     spec.Epochs,
		seed:       seed,
		weight:     weight,
		gpus:       1,
	}
	s, err := co.cl.open(pub.dataset, o, false)
	if err != nil {
		if errors.Is(err, ErrClusterSaturated) || errors.Is(err, ErrClusterClosed) {
			return nil, fmt.Errorf("%w: %v", service.ErrServerOverloaded, err)
		}
		return nil, err
	}
	return &serveStream{s: s, onFirstPull: co.onFirstPull}, nil
}

// serveStream drives one cluster session as a server-side batch source.
// The loader starts lazily at the first batch pull (an admitted stream
// costs nothing until its client REQs), and delivery runs on the session's
// single GPU-0 queue — the "GPU" here is the server's egress NIC.
type serveStream struct {
	s           *Session
	started     bool
	onFirstPull func()
}

func (st *serveStream) Next(ctx context.Context) (*Batch, error) {
	s := st.s
	if !st.started {
		if !s.state.CompareAndSwap(sessionNew, sessionConsumed) {
			return nil, ErrSessionConsumed
		}
		if st.onFirstPull != nil {
			st.onFirstPull()
		}
		now := int64(s.rt.Now())
		s.startAt.Store(now)
		s.endAt.Store(now)
		if err := s.ld.Start(ctx); err != nil {
			s.err = err
			return nil, err
		}
		st.started = true
	}
	b, err := s.ld.Next(ctx, 0)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			s.err = err
		}
		return nil, err
	}
	s.batches.Add(1)
	s.samples.Add(int64(b.Size()))
	s.bytes.Add(b.Bytes())
	s.endAt.Store(int64(s.rt.Now()))
	return b, nil
}

func (st *serveStream) Total() int { return st.s.spec.TotalBatches() }

func (st *serveStream) Close() {
	if st.started {
		st.s.ld.Stop()
		_ = st.s.env.WG.Wait(context.Background())
		// An early-stopped loader leaves constructed batches buffered in
		// its delivery queue (closed queues still serve their backlog);
		// drain and release them so pooled samples are never leaked.
		for {
			b, err := st.s.ld.Next(context.Background(), 0)
			if err != nil {
				break
			}
			b.Release()
		}
	}
	_, _ = st.s.Close()
}

// dialOptions accumulates the functional options of Dial.
type dialOptions struct {
	stream     string
	token      string
	prefetch   int
	hedge      *ServerAddr
	hedgeDelay time.Duration
	retries    int
	backoff    time.Duration
	batchSize  int
	iterations int
	epochs     int
	seed       uint64
	retain     bool
}

// DialOption configures a remote session (Dial). The stream-shape options
// (WithBatchSize, WithIterations, WithEpochs, WithSeed, WithRetainBatches)
// are StreamOptions and work on both local Opens and Dials.
type DialOption interface{ applyDial(*dialOptions) }

type dialOption func(*dialOptions)

func (f dialOption) applyDial(o *dialOptions) { f(o) }

// StreamOption shapes a batch stream wherever it runs: locally (Open,
// Train) or remotely (Dial).
type StreamOption interface {
	Option
	DialOption
}

type streamOption struct {
	session func(*sessionOptions)
	dial    func(*dialOptions)
}

func (o streamOption) applySession(s *sessionOptions) { o.session(s) }
func (o streamOption) applyDial(d *dialOptions)       { o.dial(d) }

// WithStream selects which published stream to consume. Optional when the
// server publishes exactly one.
func WithStream(name string) DialOption {
	return dialOption(func(o *dialOptions) { o.stream = name })
}

// WithAuthToken authenticates the client on token-gated servers.
func WithAuthToken(token string) DialOption {
	return dialOption(func(o *dialOptions) { o.token = token })
}

// WithPrefetch sets the client's pipeline depth: how many batch requests
// it keeps outstanding (the server caps it at its send window). Default 4.
func WithPrefetch(n int) DialOption {
	return dialOption(func(o *dialOptions) { o.prefetch = n })
}

// WithHedge arms hedged requests against a replica server: when the
// head-of-line batch has been outstanding longer than delay, the client
// re-requests it from the replica — first response wins, the loser's
// grant is cancelled, and a too-late duplicate is released, never leaked.
// The replica must serve the same stream on the same fabric.
func WithHedge(replica *ServerAddr, delay time.Duration) DialOption {
	return dialOption(func(o *dialOptions) { o.hedge = replica; o.hedgeDelay = delay })
}

// WithDialRetry bounds OPEN retries after ErrServerOverloaded rejections
// (default 0: fail fast) with exponential backoff from the given base
// (default 10ms).
func WithDialRetry(attempts int, backoff time.Duration) DialOption {
	return dialOption(func(o *dialOptions) { o.retries = attempts; o.backoff = backoff })
}

// Dial opens a batch stream on a served preprocessing cluster and returns
// the remote session. The stream's shape (batch size, budget, seed) is
// set client-side with the usual StreamOptions; the server admits the
// open through its auth table, quotas, and capacity — rejections come
// back as the typed ErrUnauthorized / ErrQuotaExceeded /
// ErrServerOverloaded, the latter retried per WithDialRetry before
// surfacing.
func Dial(addr *ServerAddr, opts ...DialOption) (*RemoteSession, error) {
	if addr == nil {
		return nil, configErr("Dial", "requires a server address")
	}
	o := &dialOptions{prefetch: 4}
	for _, opt := range opts {
		opt.applyDial(o)
	}
	switch {
	case o.prefetch <= 0:
		return nil, configErr("WithPrefetch", fmt.Sprintf("depth %d must be positive", o.prefetch))
	case o.retries < 0:
		return nil, configErr("WithDialRetry", fmt.Sprintf("attempts %d < 0", o.retries))
	case o.batchSize < 0:
		return nil, configErr("WithBatchSize", fmt.Sprintf("batch size %d < 0", o.batchSize))
	case o.iterations < 0:
		return nil, configErr("WithIterations", fmt.Sprintf("iteration budget %d < 0", o.iterations))
	case o.epochs < 0:
		return nil, configErr("WithEpochs", fmt.Sprintf("epoch budget %d < 0", o.epochs))
	}
	if o.stream == "" {
		if len(addr.pub) != 1 {
			return nil, configErr("WithStream", fmt.Sprintf(
				"the server publishes %d streams (%v); pick one", len(addr.pub), addr.Streams()))
		}
		o.stream = addr.Streams()[0]
	}
	replicaEP := -1
	if o.hedge != nil {
		switch {
		case o.hedgeDelay <= 0:
			return nil, configErr("WithHedge", fmt.Sprintf("hedge delay %v must be positive", o.hedgeDelay))
		case o.hedge.sn != addr.sn:
			return nil, configErr("WithHedge", "the replica must share the primary's fabric")
		case o.hedge == addr:
			return nil, configErr("WithHedge", "the replica must be a different server")
		}
		replicaEP = o.hedge.ep
	}
	spec := service.StreamSpec{
		Name:       o.stream,
		Token:      o.token,
		BatchSize:  o.batchSize,
		Iterations: o.iterations,
		Epochs:     o.epochs,
		Seed:       o.seed,
	}
	cfg := service.ClientConfig{
		Window:     o.prefetch,
		HedgeDelay: o.hedgeDelay,
		Retries:    o.retries,
		Backoff:    o.backoff,
	}
	rs := &RemoteSession{addr: addr, rt: addr.rt, stream: o.stream, retain: o.retain}
	var cli *service.Client
	var err error
	rs.runOnKernel(func() {
		cli, err = service.Open(context.Background(), addr.sn.net, addr.ep, replicaEP, spec, cfg)
	})
	if err != nil {
		if errors.Is(err, service.ErrUnknownStream) {
			return nil, configErr("WithStream", err.Error())
		}
		return nil, err
	}
	rs.cli = cli
	return rs, nil
}

// RemoteSession is one client-side batch stream over the service fabric —
// the remote counterpart of a Session. Batches streams the configured
// budget exactly once with the same recycling contract; Close tears the
// stream down (server-side session included) and returns the Report.
type RemoteSession struct {
	addr   *ServerAddr
	rt     Runtime
	cli    *service.Client
	stream string
	retain bool

	// inline makes Batches run its loop on the caller's already-tracked
	// task instead of wrapping a v.Run — how StreamAll runs many remote
	// sessions concurrently on one kernel.
	inline atomic.Bool

	state   atomic.Int32
	closed  atomic.Bool
	err     error
	startAt atomic.Int64 // time.Duration
	endAt   atomic.Int64
	batches atomic.Int64
	samples atomic.Int64
	bytes   atomic.Int64
}

// runOnKernel executes fn as a tracked task of a virtual runtime, inline
// when the caller already is one (StreamAll), or directly on a real
// runtime.
func (s *RemoteSession) runOnKernel(fn func()) {
	if s.inline.Load() {
		fn()
		return
	}
	if v, ok := s.rt.(*simtime.Virtual); ok {
		v.Run(fn)
		return
	}
	fn()
}

// Batches returns a single-use iterator over the remote stream, shaped
// exactly like Session.Batches: batches arrive in order, a yielded batch
// is recycled when the loop takes the next step (unless WithRetainBatches),
// and breaking out early cancels the stream server-side. Waiting happens
// in virtual time; hedged requests fire while the consumer is parked.
func (s *RemoteSession) Batches(ctx context.Context) iter.Seq2[*Batch, error] {
	return func(yield func(*Batch, error) bool) {
		switch {
		case s.state.Load() == sessionClosed:
			yield(nil, ErrSessionClosed)
			return
		case !s.state.CompareAndSwap(sessionNew, sessionConsumed):
			yield(nil, ErrSessionConsumed)
			return
		}
		s.runOnKernel(func() {
			if err := ctx.Err(); err != nil {
				s.err = err
				yield(nil, err)
				return
			}
			now := int64(s.rt.Now())
			s.startAt.Store(now)
			s.endAt.Store(now)
			defer func() {
				if s.closed.CompareAndSwap(false, true) {
					_ = s.cli.Close(context.Background())
				}
			}()
			var prev *Batch
			var prevGen uint32
			for {
				b, err := s.cli.Recv(ctx)
				if errors.Is(err, io.EOF) {
					return
				}
				if err != nil {
					s.err = err
					yield(nil, err)
					return
				}
				s.batches.Add(1)
				s.samples.Add(int64(b.Size()))
				s.bytes.Add(b.Bytes())
				s.endAt.Store(int64(s.rt.Now()))
				if prev != nil && !s.retain {
					prev.ReleaseIfOwned(prevGen)
				}
				prev, prevGen = b, b.Generation()
				if !yield(b, nil) {
					return
				}
			}
		})
	}
}

// Stats snapshots the client-side counters; safe from any goroutine.
func (s *RemoteSession) Stats() RemoteStats { return s.cli.Stats() }

// Close tears the remote stream down — the server finishes or discards
// in-flight batches, closes its backing cluster session, and sends its
// final END — and returns the client-side Report. Idempotent.
func (s *RemoteSession) Close() (*Report, error) {
	s.state.Store(sessionClosed)
	if s.closed.CompareAndSwap(false, true) {
		s.runOnKernel(func() { _ = s.cli.Close(context.Background()) })
	}
	cs := s.cli.Stats()
	rep := &Report{
		Workload:     s.stream,
		Loader:       "remote",
		GPUs:         1,
		TrainTime:    time.Duration(s.endAt.Load() - s.startAt.Load()),
		Batches:      s.batches.Load(),
		Samples:      s.samples.Load(),
		TrainedBytes: s.bytes.Load(),
	}
	rep.StepP50 = cs.StepP50
	rep.StepP99 = cs.StepP99
	return rep, s.err
}

// StreamAll consumes many remote sessions concurrently on one kernel:
// each fn(i, session) runs as its own tracked task, so virtual time
// advances with every client's traffic interleaved — the N-trainers ×
// one-fleet topology in a single deterministic run. On a real runtime it
// degrades to plain goroutines.
func StreamAll(ctx context.Context, sessions []*RemoteSession, fn func(i int, s *RemoteSession)) {
	if len(sessions) == 0 {
		return
	}
	if v, ok := sessions[0].rt.(*simtime.Virtual); ok {
		v.Run(func() {
			wg := simtime.NewWaitGroup(v)
			for i, s := range sessions {
				s.inline.Store(true)
				wg.Go(fmt.Sprintf("svc-stream-%d", i), func() { fn(i, s) })
			}
			_ = wg.Wait(ctx)
		})
		for _, s := range sessions {
			s.inline.Store(false)
		}
		return
	}
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i, s)
		}()
	}
	wg.Wait()
}
