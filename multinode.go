package minato

import (
	"fmt"
	"strings"
	"time"

	"github.com/minatoloader/minato/internal/distributed"
	"github.com/minatoloader/minato/internal/workload"
)

// Topology describes a multi-node training cluster: how many nodes, what
// hardware each runs, and the interconnect they share. The zero value of
// every field takes a documented default, so the common case is just
// WithNodes(n).
//
//	rep, err := minato.TrainMultiNode("speech-3s",
//	    minato.WithTopology(minato.Topology{
//	        Nodes:           4,
//	        LinkBandwidth:   25e9, // 200 Gb/s
//	        StragglerNode:   1,
//	        StragglerFactor: 8,    // node 1 runs on 1/8th of its cores
//	    }),
//	)
type Topology struct {
	// Nodes is the number of servers (default 2); ignored when Mix is set.
	Nodes int
	// Node is the per-node hardware (default ConfigA).
	Node HardwareConfig
	// Mix gives each node its own hardware — the heterogeneous-cluster
	// scenario. When non-empty it defines the node count.
	Mix []HardwareConfig

	// GradientBytes is the model gradient each node exchanges per step
	// (default 350 MiB, ResNet50-scale).
	GradientBytes int64
	// LinkBandwidth is each node's NIC bandwidth in bytes/s per direction
	// (default 25e9 ≈ 200 Gb/s).
	LinkBandwidth float64
	// LinkLatency is the per-transfer propagation delay (default 200µs).
	LinkLatency time.Duration
	// LocalStore gives every node private storage instead of the default
	// shared remote store reached over the fabric.
	LocalStore bool

	// Stragglers divides each listed node's CPU cores by its factor — the
	// input-stalled-node scenario, one entry per afflicted node.
	Stragglers []NodeFault
	// Degraded divides each listed node's NIC bandwidth by its factor —
	// the flaky-link scenario, one entry per afflicted node.
	Degraded []NodeFault

	// StragglerFactor > 1 divides StragglerNode's CPU cores: sugar for a
	// single Stragglers entry, kept for one-fault configurations.
	StragglerNode   int
	StragglerFactor float64
	// DegradedFactor > 1 divides DegradedNode's NIC bandwidth: sugar for a
	// single Degraded entry.
	DegradedNode   int
	DegradedFactor float64
}

// NodeFault names one node and its degradation factor — the element of
// Topology.Stragglers and Topology.Degraded. A factor of 8 leaves the node
// an eighth of the resource.
type NodeFault = distributed.NodeFault

// MultiNodeReport is the outcome of a TrainMultiNode run: whole-cluster
// timings plus per-node stall attribution (own input, the barrier, the
// network). See NodeStats.
type MultiNodeReport = distributed.Report

// NodeStats attributes one node's time inside a MultiNodeReport.
type NodeStats = distributed.NodeStats

// WithNodes runs a training session across n data-parallel nodes on the
// default topology (ConfigA nodes, 200 Gb/s fabric, shared remote store).
// TrainMultiNode only.
func WithNodes(n int) Option {
	return sessionOption(func(o *sessionOptions) { o.topo = &Topology{Nodes: n} })
}

// WithTopology runs a training session across the described multi-node
// cluster. TrainMultiNode only; it subsumes WithNodes.
func WithTopology(t Topology) Option {
	return sessionOption(func(o *sessionOptions) { o.topo = &t })
}

// config resolves the topology's defaults into the internal cluster
// config.
func (t Topology) config(hw *HardwareConfig) (distributed.Config, error) {
	// Start from the internal defaults so future DefaultConfig fields flow
	// through, then lay the topology's explicit choices over them.
	cfg := distributed.DefaultConfig(t.Nodes)
	cfg.RemoteStore = !t.LocalStore
	cfg.Stragglers = append([]NodeFault(nil), t.Stragglers...)
	cfg.Degraded = append([]NodeFault(nil), t.Degraded...)
	cfg.StragglerNode, cfg.StragglerFactor = t.StragglerNode, t.StragglerFactor
	cfg.DegradedNode, cfg.DegradedFactor = t.DegradedNode, t.DegradedFactor
	if cfg.Nodes == 0 && len(t.Mix) == 0 {
		cfg.Nodes = 2
	}
	if t.Node.Cores > 0 {
		cfg.Node = t.Node
	} else if hw != nil {
		// WithHardware composes with WithNodes: it sizes each node.
		cfg.Node = *hw
	}
	if len(t.Mix) > 0 {
		cfg.Mix = t.Mix
		cfg.Nodes = len(t.Mix)
	}
	if t.GradientBytes > 0 {
		cfg.GradientBytes = t.GradientBytes
	}
	if t.LinkBandwidth > 0 {
		cfg.LinkBandwidth = t.LinkBandwidth
	}
	if t.LinkLatency > 0 {
		cfg.LinkLatency = t.LinkLatency
	}
	switch {
	case cfg.Nodes < 1:
		return cfg, configErr("WithTopology", fmt.Sprintf("node count %d < 1", cfg.Nodes))
	case t.StragglerFactor > 1 && (t.StragglerNode < 0 || t.StragglerNode >= cfg.Nodes):
		return cfg, configErr("WithTopology", fmt.Sprintf("straggler node %d outside cluster of %d", t.StragglerNode, cfg.Nodes))
	case t.DegradedFactor > 1 && (t.DegradedNode < 0 || t.DegradedNode >= cfg.Nodes):
		return cfg, configErr("WithTopology", fmt.Sprintf("degraded node %d outside cluster of %d", t.DegradedNode, cfg.Nodes))
	case t.StragglerFactor < 0 || (t.StragglerFactor > 0 && t.StragglerFactor < 1):
		return cfg, configErr("WithTopology", fmt.Sprintf("straggler factor %g must be ≥ 1", t.StragglerFactor))
	case t.DegradedFactor < 0 || (t.DegradedFactor > 0 && t.DegradedFactor < 1):
		return cfg, configErr("WithTopology", fmt.Sprintf("degraded factor %g must be ≥ 1", t.DegradedFactor))
	}
	for _, f := range t.Stragglers {
		switch {
		case f.Factor < 1:
			return cfg, configErr("WithTopology", fmt.Sprintf("straggler factor %g must be ≥ 1", f.Factor))
		case f.Node < 0 || f.Node >= cfg.Nodes:
			return cfg, configErr("WithTopology", fmt.Sprintf("straggler node %d outside cluster of %d", f.Node, cfg.Nodes))
		}
	}
	for _, f := range t.Degraded {
		switch {
		case f.Factor < 1:
			return cfg, configErr("WithTopology", fmt.Sprintf("degraded factor %g must be ≥ 1", f.Factor))
		case f.Node < 0 || f.Node >= cfg.Nodes:
			return cfg, configErr("WithTopology", fmt.Sprintf("degraded node %d outside cluster of %d", f.Node, cfg.Nodes))
		}
	}
	return cfg, nil
}

// TrainMultiNode runs a data-parallel training session across a simulated
// multi-node cluster: every node is a full testbed running its own loader
// instance over a deterministic shard of the workload's dataset, gradient
// all-reduce runs as ring-reduce flows over a simulated interconnect, and
// (by default) cold shard reads are fetched from a shared storage server
// over the same NICs — so data traffic and gradient traffic contend the
// way they do on a real cluster.
//
//	rep, err := minato.TrainMultiNode("speech-3s",
//	    minato.WithNodes(4),
//	    minato.WithLoader("pytorch"),
//	    minato.WithIterations(200),
//	)
//	// rep.StepTime(), rep.NetworkStallShare(), rep.PerNode[i].DataStall, ...
//
// Accepted options: WithNodes/WithTopology (the cluster shape), WithLoader
// and friends, WithHardware (sizes each node), WithGPUs (per-node GPU
// count), WithIterations/WithEpochs, WithBatchSize, WithSeed, and
// WithChaos/WithChaosScenario (scripted node crashes, link flaps, disk
// brownouts, worker stalls — see ChaosScript). The run is deterministic:
// identical options — including the chaos script — reproduce the report
// bit-for-bit.
func TrainMultiNode(workloadName string, opts ...Option) (*MultiNodeReport, error) {
	o := buildOptions(opts)
	w, ok := workload.ByName(workloadName, o.seed)
	if !ok {
		return nil, configErr("TrainMultiNode", fmt.Sprintf("unknown workload %q (registered: %s)",
			workloadName, strings.Join(workload.Names(), ", ")))
	}
	return trainMultiNode(w, o)
}

// TrainMultiNodeWorkload is TrainMultiNode for a workload value built
// directly.
func TrainMultiNodeWorkload(w Workload, opts ...Option) (*MultiNodeReport, error) {
	return trainMultiNode(w, buildOptions(opts))
}

func trainMultiNode(w Workload, o *sessionOptions) (*MultiNodeReport, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	switch {
	case o.env != nil:
		return nil, configErr("WithEnv", "multi-node sessions size nodes with WithHardware or Topology.Node")
	case o.rt != nil:
		return nil, configErr("WithRuntime", "multi-node sessions own their runtime")
	case o.pipeline != nil:
		return nil, configErr("WithPipeline", "workloads carry their own pipeline")
	case o.retain:
		return nil, configErr("WithRetainBatches", "training consumers own and recycle their batches")
	case o.prioritySet:
		return nil, configErr("WithPriority", "priorities arbitrate tenants of a shared Cluster, not cluster nodes")
	}
	topo := o.topo
	if topo == nil {
		topo = &Topology{}
	}
	cfg, err := topo.config(o.hw)
	if err != nil {
		return nil, err
	}
	if o.gpus > 0 {
		cfg.Node = cfg.Node.WithGPUs(o.gpus)
		if len(cfg.Mix) > 0 {
			// Copy before rewriting: cfg.Mix shares its backing array with
			// the caller's Topology.Mix.
			mix := make([]HardwareConfig, len(cfg.Mix))
			for i, m := range cfg.Mix {
				mix[i] = m.WithGPUs(o.gpus)
			}
			cfg.Mix = mix
		}
	}
	f, err := o.resolveFactory()
	if err != nil {
		return nil, err
	}
	if o.batchSize > 0 {
		w.BatchSize = o.batchSize
	}
	if o.epochs > 0 {
		w = w.WithEpochs(o.epochs)
	}
	if o.iterations > 0 {
		w = w.WithIterations(o.iterations)
	}
	if w.Spec().BatchesPerEpoch() == 0 {
		return nil, configErr("WithBatchSize", fmt.Sprintf("batch size %d exceeds dataset %q size %d",
			w.BatchSize, w.Dataset.Name(), w.Dataset.Len()))
	}
	script, err := o.resolveChaos(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	cfg.Script = script
	cfg.Trace = o.trace
	return distributed.Run(cfg, w, f)
}
