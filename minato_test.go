package minato

import (
	"context"
	"testing"
	"time"
)

// TestPublicAPISession exercises the whole facade: simulate the paper's
// headline comparison at small scale through only exported identifiers.
func TestPublicAPISession(t *testing.T) {
	cfg := ConfigA().WithGPUs(2)
	w := SpeechWorkload(1, 3*time.Second).WithIterations(40)

	ptRep, err := TrainWorkload(w, WithLoader("pytorch"), WithHardware(cfg))
	if err != nil {
		t.Fatal(err)
	}
	mnRep, err := TrainWorkload(w, WithLoaderFactory(MinatoFactory()), WithHardware(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if mnRep.TrainTime >= ptRep.TrainTime {
		t.Fatalf("minato (%v) not faster than pytorch (%v)", mnRep.TrainTime, ptRep.TrainTime)
	}
	if mnRep.Batches != 40 || ptRep.Batches != 40 {
		t.Fatalf("batch budgets: %d/%d", mnRep.Batches, ptRep.Batches)
	}
}

// TestPublicAPICustomLoader embeds the loader around a user-defined
// dataset and pipeline through the session API, as a downstream
// application would.
func TestPublicAPICustomLoader(t *testing.T) {
	pipeline := NewPipeline("custom",
		NewTransform("step", func(*Sample) time.Duration { return 5 * time.Millisecond }, nil))
	sess, err := Open(SubsetDataset(COCO(1), 64),
		WithEnv(EnvConfig{Cores: 4, CacheBytes: 4 << 30}),
		WithPipeline(pipeline),
		WithBatchSize(4),
		WithIterations(8),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for b, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if b.Size() != 4 {
			t.Fatalf("batch size %d", b.Size())
		}
		n++
	}
	if n != 8 {
		t.Fatalf("delivered %d batches, want 8", n)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := KiTS19(1)
	if d.Len() != 210 {
		t.Fatalf("KiTS19 len = %d", d.Len())
	}
	if got := SubsetDataset(d, 10).Len(); got != 10 {
		t.Fatalf("subset len = %d", got)
	}
	if got := ReplicateDataset(d, 3).Len(); got != 630 {
		t.Fatalf("replicate len = %d", got)
	}
	if LibriSpeech(1, 5).Len() == 0 || COCO(1).Len() == 0 {
		t.Fatal("dataset constructors broken")
	}
}

func TestNewEnvDefaults(t *testing.T) {
	rt := NewVirtualRuntime()
	env := NewEnv(rt, EnvConfig{})
	if env.CPU.Capacity() != 8 {
		t.Fatalf("default cores = %v", env.CPU.Capacity())
	}
	if len(env.GPUs) != 1 {
		t.Fatalf("default GPUs = %d", len(env.GPUs))
	}
	if env.Store == nil || env.WG == nil {
		t.Fatal("env not fully wired")
	}
}

func TestAllFactoriesNamed(t *testing.T) {
	names := map[string]bool{}
	for _, f := range AllFactories() {
		names[f.Name] = true
	}
	for _, want := range []string{"pytorch", "pecan", "dali", "minato"} {
		if !names[want] {
			t.Fatalf("missing factory %q", want)
		}
	}
}
