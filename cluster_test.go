package minato

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// openTenant opens a session on cl over a private key space so tenants do
// not share cache entries unless the test wants them to.
func openTenant(t *testing.T, cl *Cluster, space string, n int, opts ...Option) *Session {
	t.Helper()
	opts = append([]Option{
		WithPipeline(flatPipeline(time.Millisecond)),
		WithBatchSize(8),
		WithIterations(6),
	}, opts...)
	sess, err := cl.Open(namedDataset{space: space, n: n}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// namedDataset is sessionDataset with a configurable key space, so tests
// control whether tenants share storage keys.
type namedDataset struct {
	space string
	n     int
}

func (d namedDataset) Name() string { return d.space }
func (d namedDataset) Len() int     { return d.n }
func (d namedDataset) Sample(epoch, i int) *Sample {
	return &Sample{
		Index: i, Epoch: epoch,
		Key:      Key{Space: d.space, Index: int64(i)},
		RawBytes: 1 << 16, Bytes: 1 << 16,
	}
}

func drain(t *testing.T, sess *Session) *Report {
	t.Helper()
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestClusterConcurrentSessions is the ISSUE's acceptance scenario at test
// scale: N concurrent sessions on one cluster, sharing one pool, cache,
// and CPU, each delivering its exact budget. Run under -race in CI.
func TestClusterConcurrentSessions(t *testing.T) {
	const tenants = 8
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 16, GPUs: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	reps := make([]*Report, tenants)
	for i := 0; i < tenants; i++ {
		i := i
		sess := openTenant(t, cl, fmt.Sprintf("tenant-%d", i), 256, WithSeed(uint64(i+1)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for b, err := range sess.Batches(context.Background()) {
				if err != nil {
					t.Error(err)
					return
				}
				if b.Size() != 8 {
					t.Errorf("tenant %d: batch size %d", i, b.Size())
					return
				}
				n++
			}
			rep, err := sess.Close()
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = rep
		}()
	}
	wg.Wait()
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("tenant %d: no report", i)
		}
		if rep.Batches != 6 || rep.Samples != 48 {
			t.Fatalf("tenant %d: %d batches / %d samples, want 6/48", i, rep.Batches, rep.Samples)
		}
		if rep.TrainTime <= 0 {
			t.Fatalf("tenant %d: no delivery time", i)
		}
	}
	st := cl.Stats()
	if st.ActiveSessions != 0 {
		t.Fatalf("ActiveSessions = %d after all closed", st.ActiveSessions)
	}
	if st.OpenedTotal != tenants {
		t.Fatalf("OpenedTotal = %d, want %d", st.OpenedTotal, tenants)
	}
}

// TestClusterSessionHammer stresses the shared pool/cache lifecycle: many
// rounds of concurrent open-stream-close over one cluster, exercised under
// -race in CI.
func TestClusterSessionHammer(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 8}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const rounds, tenants = 4, 6
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for i := 0; i < tenants; i++ {
			sess := openTenant(t, cl, "hammer", 128, WithSeed(uint64(r*tenants+i+1)))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, err := range sess.Batches(context.Background()) {
					if err != nil {
						t.Error(err)
						return
					}
				}
				if _, err := sess.Close(); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}

func TestClusterAdmissionReject(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}), WithMaxSessions(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	a := openTenant(t, cl, "a", 64)
	b := openTenant(t, cl, "b", 64)
	if _, err := cl.Open(namedDataset{space: "c", n: 64}); !errors.Is(err, ErrClusterSaturated) {
		t.Fatalf("third open = %v, want ErrClusterSaturated", err)
	}
	st := cl.Stats()
	if st.RejectedTotal != 1 || st.ActiveSessions != 2 {
		t.Fatalf("stats = %+v", st)
	}
	drain(t, a)
	// A slot is free again.
	c := openTenant(t, cl, "c", 64)
	drain(t, b)
	drain(t, c)
}

func TestClusterAdmissionQueue(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}),
		WithMaxSessions(1), WithAdmission(AdmitQueue))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	a := openTenant(t, cl, "a", 64)

	var admitted atomic.Bool
	done := make(chan *Session, 1)
	go func() {
		sess, err := cl.Open(namedDataset{space: "b", n: 64},
			WithPipeline(flatPipeline(time.Millisecond)), WithBatchSize(8), WithIterations(4))
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		admitted.Store(true)
		done <- sess
	}()

	// The queued open must not be admitted while a holds the only slot.
	time.Sleep(50 * time.Millisecond)
	if admitted.Load() {
		t.Fatal("queued open admitted while the cluster was saturated")
	}
	if q := cl.Stats().QueuedOpens; q != 1 {
		t.Fatalf("QueuedOpens = %d, want 1", q)
	}
	drain(t, a) // closing a releases the slot
	b := <-done
	if b == nil {
		t.Fatal("queued open failed")
	}
	drain(t, b)
}

func TestClusterClosed(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}),
		WithMaxSessions(1), WithAdmission(AdmitQueue))
	if err != nil {
		t.Fatal(err)
	}
	a := openTenant(t, cl, "a", 64)

	queued := make(chan error, 1)
	go func() {
		_, err := cl.Open(namedDataset{space: "b", n: 64})
		queued <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-queued; !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("queued open after Close = %v, want ErrClusterClosed", err)
	}
	if _, err := cl.Open(namedDataset{space: "c", n: 64}); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("open after Close = %v, want ErrClusterClosed", err)
	}
	if _, err := cl.Train("speech-3s", WithIterations(4)); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("train after Close = %v, want ErrClusterClosed", err)
	}
	// A session admitted before Close still streams and closes cleanly —
	// the cluster reclaims only after the last session leaves.
	for b, err := range a.Batches(context.Background()) {
		_ = b
		if err != nil && !errors.Is(err, ErrClusterClosed) {
			t.Fatal(err)
		}
		break
	}
	if _, err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestClusterSessionMisuse covers the session-misuse taxonomy on cluster
// sessions: double-Batches, Batches after Close, and cluster-owned options.
func TestClusterSessionMisuse(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"WithHardware", WithHardware(ConfigA())},
		{"WithEnv", WithEnv(EnvConfig{Cores: 2})},
		{"WithRuntime", WithRuntime(NewVirtualRuntime())},
	} {
		var ce *ConfigError
		if _, err := cl.Open(namedDataset{space: "x", n: 64}, tc.opt); !errors.As(err, &ce) {
			t.Fatalf("%s on cluster session: err = %v, want *ConfigError", tc.name, err)
		} else if ce.Option != tc.name {
			t.Fatalf("%s: ConfigError.Option = %q", tc.name, ce.Option)
		}
	}
	if _, err := cl.Open(namedDataset{space: "x", n: 64}, WithGPUs(3)); err == nil {
		t.Fatal("session got more GPUs than the cluster has")
	}

	sess := openTenant(t, cl, "misuse", 128)
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, err := range sess.Batches(context.Background()) {
		if !errors.Is(err, ErrSessionConsumed) {
			t.Fatalf("second consumption yielded %v, want ErrSessionConsumed", err)
		}
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	for _, err := range sess.Batches(context.Background()) {
		if !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("post-Close consumption yielded %v, want ErrSessionClosed", err)
		}
	}
}

// TestClusterSessionContextCancel cancels one tenant mid-stream while a
// sibling keeps streaming on the same cluster.
func TestClusterSessionContextCancel(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 8}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	victim := openTenant(t, cl, "victim", 256, WithIterations(100))
	bystander := openTenant(t, cl, "bystander", 256, WithIterations(12))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep := drain(t, bystander)
		if rep.Batches != 12 {
			t.Errorf("bystander delivered %d batches, want 12", rep.Batches)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	var sawErr error
	for _, err := range victim.Batches(ctx) {
		if err != nil {
			sawErr = err
			continue
		}
		n++
		if n == 3 {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("cancelled stream yielded %v, want context.Canceled", sawErr)
	}
	if _, err := victim.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close error = %v, want context.Canceled", err)
	}
	wg.Wait()
}

// TestClusterCacheAttribution verifies per-tenant cache accounting: a
// second tenant over the same key space hits what the first one loaded,
// and each Report carries its own slice of the shared cache.
func TestClusterCacheAttribution(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	first := openTenant(t, cl, "shared-keys", 64, WithEpochs(1), WithIterations(8))
	repA := drain(t, first)
	if repA.CacheStats.Misses == 0 {
		t.Fatalf("first tenant reported no cache misses: %+v", repA.CacheStats)
	}
	if repA.CacheStats.Hits != 0 {
		t.Fatalf("first tenant hit a cold cache: %+v", repA.CacheStats)
	}

	second := openTenant(t, cl, "shared-keys", 64, WithEpochs(1), WithIterations(8))
	repB := drain(t, second)
	if repB.CacheStats.Hits == 0 {
		t.Fatalf("second tenant missed a warm cache: %+v", repB.CacheStats)
	}
	if repB.CacheStats.Misses != 0 {
		t.Fatalf("second tenant missed despite identical keys: %+v", repB.CacheStats)
	}
	// Attribution is per tenant: B's hits are not folded into A's stats.
	if repA.CacheStats.Hits != 0 {
		t.Fatalf("first tenant's report changed after the fact: %+v", repA.CacheStats)
	}
	// Disk traffic is attributed too: A's cold fills read disk, B rode the
	// warm cache and caused none.
	if repA.DiskBytes == 0 {
		t.Fatalf("first tenant reported no disk bytes: %+v", repA)
	}
	if repB.DiskBytes != 0 {
		t.Fatalf("warm tenant charged %d disk bytes, want 0", repB.DiskBytes)
	}
}

// TestClusterGPUPlacementSpreads verifies single-GPU sessions land on
// distinct least-loaded GPUs instead of stacking on a prefix, and that
// placement is released on Close.
func TestClusterGPUPlacementSpreads(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 8, GPUs: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sessions := make([]*Session, 4)
	seen := map[int]bool{}
	for i := range sessions {
		sessions[i] = openTenant(t, cl, fmt.Sprintf("gpu-%d", i), 64, WithGPUs(1))
		idx := sessions[i].gpuIdxs[0]
		if seen[idx] {
			t.Fatalf("session %d stacked on already-used GPU %d", i, idx)
		}
		seen[idx] = true
	}
	drain(t, sessions[0])
	// The freed GPU is the least loaded again.
	next := openTenant(t, cl, "gpu-next", 64, WithGPUs(1))
	if got := next.gpuIdxs[0]; got != sessions[0].gpuIdxs[0] {
		t.Fatalf("freed GPU %d not reused, placed on %d", sessions[0].gpuIdxs[0], got)
	}
	drain(t, next)
	for _, s := range sessions[1:] {
		drain(t, s)
	}
}

// TestClusterWorkerQuotaRebalance checks priority-weighted fair shares: a
// weight-3 tenant gets three quarters of the capacity next to a weight-1
// sibling, and quotas return when the sibling leaves.
func TestClusterWorkerQuotaRebalance(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 16}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	a := openTenant(t, cl, "a", 64) // weight 1
	if q := a.Stats().WorkerQuota; q != 16 {
		t.Fatalf("sole tenant quota = %d, want 16", q)
	}
	b := openTenant(t, cl, "b", 64, WithPriority(3))
	if q := a.Stats().WorkerQuota; q != 4 {
		t.Fatalf("weight-1 quota next to weight-3 = %d, want 4", q)
	}
	if q := b.Stats().WorkerQuota; q != 12 {
		t.Fatalf("weight-3 quota = %d, want 12", q)
	}
	drain(t, b)
	if q := a.Stats().WorkerQuota; q != 16 {
		t.Fatalf("quota after sibling left = %d, want 16", q)
	}
	drain(t, a)

	var ce *ConfigError
	if _, err := cl.Open(namedDataset{space: "c", n: 64}, WithPriority(-1)); !errors.As(err, &ce) {
		t.Fatalf("negative priority: err = %v, want *ConfigError", err)
	}
}

// TestClusterTrainConcurrent co-runs two training sessions on one cluster
// — the Gong et al. co-running scenario — and checks both complete their
// budgets with per-tenant cache attribution.
func TestClusterTrainConcurrent(t *testing.T) {
	cl, err := NewCluster(WithHardware(ConfigA()), WithGPUs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	reps := make([]*Report, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := cl.Train("speech-3s", WithIterations(20), WithSeed(uint64(i+1)))
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = rep
		}()
	}
	wg.Wait()
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("train %d: no report", i)
		}
		if rep.Batches != 20 {
			t.Fatalf("train %d delivered %d batches, want 20", i, rep.Batches)
		}
	}
}

// TestConfigErrorTaxonomy checks that option misuse is matchable with
// errors.As across entry points.
func TestConfigErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"Open batch", func() error { _, err := Open(sessionDataset{n: 8}, WithBatchSize(-1)); return err }},
		{"Open loader", func() error { _, err := Open(sessionDataset{n: 8}, WithLoader("tf.data")); return err }},
		{"Train env", func() error { _, err := Train("speech-3s", WithEnv(EnvConfig{})); return err }},
		{"NewCluster", func() error {
			_, err := NewCluster(WithHardware(ConfigA()), WithEnv(EnvConfig{}))
			return err
		}},
		{"NewCluster sessions", func() error { _, err := NewCluster(WithMaxSessions(-1)); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v (%T), want *ConfigError", err, err)
			}
			if ce.Option == "" || ce.Reason == "" {
				t.Fatalf("ConfigError incomplete: %+v", ce)
			}
		})
	}
}

// TestClusterStatsLive snapshots a streaming session from another
// goroutine.
func TestClusterStatsLive(t *testing.T) {
	cl, err := NewCluster(WithEnv(EnvConfig{Cores: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess := openTenant(t, cl, "live", 256, WithIterations(40))
	if st := sess.Stats(); st.State != "open" || st.Batches != 0 {
		t.Fatalf("pre-stream stats = %+v", st)
	}

	probe := make(chan SessionStats, 1)
	n := 0
	for _, err := range sess.Batches(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 10 {
			done := make(chan struct{})
			go func() { // snapshot from a foreign goroutine mid-stream
				probe <- sess.Stats()
				close(done)
			}()
			<-done
		}
	}
	st := <-probe
	if st.State != "streaming" || st.Batches < 1 || st.Batches > 40 {
		t.Fatalf("mid-stream stats = %+v", st)
	}
	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats(); got.State != "closed" || got.Batches != rep.Batches {
		t.Fatalf("post-close stats = %+v vs report %d batches", got, rep.Batches)
	}
	if cs := cl.Stats(); cs.Pool.Gets == 0 {
		t.Fatalf("cluster pool stats empty: %+v", cs.Pool)
	}
}

// TestClusterDeterministicReports runs the same two-tenant schedule twice
// on fresh clusters and requires bit-identical per-tenant reports.
func TestClusterDeterministicReports(t *testing.T) {
	run := func() []Report {
		cl, err := NewCluster(WithEnv(EnvConfig{Cores: 8, GPUs: 2}))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var wg sync.WaitGroup
		out := make([]Report, 4)
		for i := 0; i < 4; i++ {
			i := i
			sess := openTenant(t, cl, fmt.Sprintf("det-%d", i), 256,
				WithSeed(uint64(i+1)), WithIterations(10))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, err := range sess.Batches(context.Background()) {
					if err != nil {
						t.Error(err)
						return
					}
				}
				rep, err := sess.Close()
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = *rep
			}()
		}
		wg.Wait()
		return out
	}
	first, second := run(), run()
	for i := range first {
		a, b := first[i], second[i]
		if a.Workload != b.Workload || a.Loader != b.Loader ||
			a.Batches != b.Batches || a.Samples != b.Samples ||
			a.TrainedBytes != b.TrainedBytes ||
			a.CacheStats.Hits != b.CacheStats.Hits ||
			a.CacheStats.Misses != b.CacheStats.Misses {
			t.Fatalf("tenant %d diverged:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}
